//! Common traits for frequency estimators (counter algorithms and, via the
//! `hh-sketches` crate, sketch algorithms).

use std::hash::Hash;

/// Whether an estimator's point estimates are one-sided.
///
/// The paper exploits one-sidedness twice: SPACESAVING *overestimates*
/// (`f_i ≤ c_i ≤ f_i + Δ`), FREQUENT *underestimates*
/// (`f_i − Δ ≤ c_i ≤ f_i`), and Section 4.2's m-sparse recovery requires an
/// underestimating algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bias {
    /// Estimates never exceed the true frequency.
    Under,
    /// Estimates are never below the true frequency (for stored items).
    Over,
    /// Two-sided error (e.g. Count-Sketch).
    TwoSided,
}

/// The `(A, B)` constants of a k-tail guarantee (Definition 2 of the paper):
/// `δ_i ≤ A · F1^res(k) / (m − B·k)` for all `i` and any `k < m/B`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailConstants {
    /// Numerator constant.
    pub a: f64,
    /// Counter-discount constant.
    pub b: f64,
}

impl TailConstants {
    /// The specialized constants proved for FREQUENT (Appendix B) and
    /// SPACESAVING (Appendix C).
    pub const ONE_ONE: TailConstants = TailConstants { a: 1.0, b: 1.0 };

    /// The generic HTC constants from Theorem 2 with `A = 1`: `(1, 2)`.
    pub const GENERIC: TailConstants = TailConstants { a: 1.0, b: 2.0 };

    /// Evaluates the bound `A·F1^res(k)/(m − B·k)`, or `None` when vacuous
    /// (`m ≤ B·k`).
    pub fn bound(&self, m: usize, k: usize, res1_k: u64) -> Option<f64> {
        let denom = m as f64 - self.b * k as f64;
        if denom <= 0.0 {
            None
        } else {
            Some(self.a * res1_k as f64 / denom)
        }
    }

    /// Counters needed for the Theorem 5 k-sparse recovery at error `ε`:
    /// `m = k(cA/ε + B)` with `c = 3` in general, `c = 2` for one-sided
    /// algorithms.
    pub fn counters_for_sparse_recovery(&self, k: usize, eps: f64, one_sided: bool) -> usize {
        assert!(eps > 0.0);
        let c = if one_sided { 2.0 } else { 3.0 };
        (k as f64 * (c * self.a / eps + self.b)).ceil() as usize
    }

    /// Counters needed for the Theorem 6 / 7 results: `m = Bk + Ak/ε`.
    pub fn counters_for_residual_estimate(&self, k: usize, eps: f64) -> usize {
        assert!(eps > 0.0);
        (self.b * k as f64 + self.a * k as f64 / eps).ceil() as usize
    }

    /// The merged-summary constants from Theorem 11: `(3A, A + B)`.
    pub fn merged(&self) -> TailConstants {
        TailConstants {
            a: 3.0 * self.a,
            b: self.a + self.b,
        }
    }
}

/// Calls `f` once per maximal run of adjacent equal items in `items`,
/// passing the run's representative and its length — the aggregation step
/// shared by the [`FrequencyEstimator::update_batch`] fast paths (the
/// `StreamSummary`-backed counters here, and the sketch overrides in
/// `hh-sketches`).
///
/// ```
/// let mut runs = Vec::new();
/// hh_counters::traits::for_each_run(&[1u64, 1, 2, 1, 1, 1], |item, len| {
///     runs.push((*item, len));
/// });
/// assert_eq!(runs, vec![(1, 2), (2, 1), (1, 3)]);
/// ```
pub fn for_each_run<I: Eq>(items: &[I], mut f: impl FnMut(&I, u64)) {
    let mut i = 0;
    while i < items.len() {
        let item = &items[i];
        let mut run = 1usize;
        while i + run < items.len() && items[i + run] == *item {
            run += 1;
        }
        i += run;
        f(item, run as u64);
    }
}

/// Sorts a `(key, count)` scratch buffer by key, merges equal keys, and
/// calls `f` once per *distinct* key with its total count — the full
/// pre-aggregation step the commutative sketch `update_batch` fast paths
/// share (see [`FrequencyEstimator::updates_commute`]). The buffer is left
/// sorted; callers reuse it across batches.
///
/// ```
/// let mut agg = vec![(7u64, 1u64), (3, 2), (7, 4)];
/// let mut out = Vec::new();
/// hh_counters::traits::for_each_aggregated(&mut agg, |k, c| out.push((k, c)));
/// assert_eq!(out, vec![(3, 2), (7, 5)]);
/// ```
pub fn for_each_aggregated(agg: &mut [(u64, u64)], mut f: impl FnMut(u64, u64)) {
    agg.sort_unstable_by_key(|&(key, _)| key);
    let mut i = 0;
    while i < agg.len() {
        let (key, mut count) = agg[i];
        i += 1;
        while i < agg.len() && agg[i].0 == key {
            count += agg[i].1;
            i += 1;
        }
        f(key, count);
    }
}

/// A streaming frequency estimator over items of type `I`.
///
/// Implementations process a stream one update at a time and answer point
/// frequency queries. `estimate` returns the algorithm's canonical point
/// estimate (`c_i` in the paper; 0 for unstored items).
pub trait FrequencyEstimator<I: Eq + Hash + Clone> {
    /// Short human-readable algorithm name (for experiment tables).
    fn name(&self) -> &'static str;

    /// The space budget `m`: number of counters the instance may hold.
    fn capacity(&self) -> usize;

    /// Processes one occurrence of `item`.
    fn update(&mut self, item: I) {
        self.update_by(item, 1);
    }

    /// Processes `count` occurrences of `item` at once (used for merging
    /// summaries and replaying sparse vectors; equivalent to `count` calls
    /// of [`FrequencyEstimator::update`]).
    fn update_by(&mut self, item: I, count: u64);

    /// Processes a slice of arrivals in stream order — equivalent to calling
    /// [`FrequencyEstimator::update`] once per element.
    ///
    /// The default implementation is that per-element loop; implementations
    /// backed by [`crate::stream_summary::StreamSummary`] override it with a
    /// run-length-aggregated fast path that skips per-item clones and
    /// repeated hash probes. Batched ingest is also the natural unit for
    /// sharded summarization ([`crate::parallel`]): each worker drains its
    /// partition with one call.
    fn update_batch(&mut self, items: &[I]) {
        for item in items {
            self.update(item.clone());
        }
    }

    /// Processes several slices of arrivals in order — equivalent to one
    /// [`FrequencyEstimator::update_batch`] call per chunk. This is the
    /// natural ingest surface for drivers that buffer their input (the CLI
    /// reads line chunks, shard workers drain partition segments): each
    /// chunk goes through the backend's batched fast path with one virtual
    /// call, and any backend-owned pre-aggregation scratch is reused across
    /// chunks.
    fn update_many(&mut self, chunks: &[&[I]]) {
        for chunk in chunks {
            self.update_batch(chunk);
        }
    }

    /// Whether this estimator's final state is invariant under *reordering
    /// and aggregation* of its update sequence — i.e. any permutation of
    /// `update_by` calls, and any merging of same-item calls into one
    /// weighted call, produces an identical final state.
    ///
    /// True for purely additive structures (classic Count-Min,
    /// Count-Sketch: cell updates are linear). False for anything whose
    /// state depends on arrival order: the counter algorithms (eviction and
    /// tie-breaking are order-sensitive), conservative-update Count-Min,
    /// and candidate trackers. Batched ingest paths consult this to decide
    /// whether a batch may be pre-aggregated by item (collapsing *all*
    /// duplicates) rather than only run-length compressed (collapsing
    /// adjacent duplicates, which is always safe for the algorithms here).
    fn updates_commute(&self) -> bool {
        false
    }

    /// The point estimate `c_i` (0 when the item is not stored).
    fn estimate(&self, item: &I) -> u64;

    /// Number of items currently stored (`|T| ≤ m`).
    fn stored_len(&self) -> usize;

    /// Snapshot of stored `(item, estimate)` pairs, sorted by decreasing
    /// estimate with ties broken by the summary's eviction order.
    fn entries(&self) -> Vec<(I, u64)>;

    /// [`FrequencyEstimator::entries`] written into a caller-owned buffer
    /// (cleared first). The default delegates to `entries`; implementations
    /// backed by [`crate::stream_summary::StreamSummary`] override it to
    /// write straight out of the summary, so monitor/report loops that poll
    /// every few updates stop allocating a fresh `Vec` per poll.
    fn entries_into(&self, out: &mut Vec<(I, u64)>) {
        out.clear();
        out.append(&mut self.entries());
    }

    /// Total weight processed so far (`F1` of the consumed stream).
    fn stream_len(&self) -> u64;

    /// The estimator's bias direction, if one-sided.
    fn bias(&self) -> Bias;

    /// The per-item overcount annotation stored for `item`, if the backend
    /// records one (SPACESAVING's `err_i`: the minimum counter value when
    /// the item last entered the table). `None` when the item is unstored
    /// or the algorithm keeps no such annotation.
    fn error_term(&self, item: &I) -> Option<u64> {
        let _ = item;
        None
    }

    /// A guaranteed lower bound on the item's true frequency.
    ///
    /// For underestimating algorithms this equals [`Self::estimate`]. For
    /// overestimating algorithms the default consults the stored
    /// [`Self::error_term`] and returns `c_i − err_i` (Section 4.2 of the
    /// paper) — so stored SPACESAVING items get their certified minimum
    /// rather than a vacuous 0. Two-sided estimators (and unstored items of
    /// overestimating ones) fall back to 0.
    fn lower_estimate(&self, item: &I) -> u64 {
        match self.bias() {
            Bias::Under => self.estimate(item),
            _ => match self.error_term(item) {
                Some(err) => self.estimate(item).saturating_sub(err),
                None => 0,
            },
        }
    }

    /// A guaranteed upper bound on the item's true frequency.
    ///
    /// The default is only aware of the bias direction: overestimating
    /// algorithms return their estimate for stored items (it already
    /// dominates `f_i`) and the trivially sound [`Self::stream_len`]
    /// otherwise; everything else returns [`Self::stream_len`].
    /// Implementations with sharper information override this — SPACESAVING
    /// bounds unstored items by the minimum counter `Δ`, FREQUENT adds its
    /// decrement count, LOSSYCOUNTING adds the stored `delta` window id.
    fn upper_estimate(&self, item: &I) -> u64 {
        match self.bias() {
            Bias::Over if self.error_term(item).is_some() => self.estimate(item),
            _ => self.stream_len(),
        }
    }

    /// The `(A, B)` tail constants proved for this algorithm, if any.
    fn tail_constants(&self) -> Option<TailConstants> {
        None
    }
}

impl<I: Eq + Hash + Clone, T: FrequencyEstimator<I> + ?Sized> FrequencyEstimator<I> for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn capacity(&self) -> usize {
        (**self).capacity()
    }

    fn update(&mut self, item: I) {
        (**self).update(item)
    }

    fn update_by(&mut self, item: I, count: u64) {
        (**self).update_by(item, count)
    }

    fn update_batch(&mut self, items: &[I]) {
        (**self).update_batch(items)
    }

    fn update_many(&mut self, chunks: &[&[I]]) {
        (**self).update_many(chunks)
    }

    fn updates_commute(&self) -> bool {
        (**self).updates_commute()
    }

    fn estimate(&self, item: &I) -> u64 {
        (**self).estimate(item)
    }

    fn stored_len(&self) -> usize {
        (**self).stored_len()
    }

    fn entries(&self) -> Vec<(I, u64)> {
        (**self).entries()
    }

    fn entries_into(&self, out: &mut Vec<(I, u64)>) {
        (**self).entries_into(out)
    }

    fn stream_len(&self) -> u64 {
        (**self).stream_len()
    }

    fn bias(&self) -> Bias {
        (**self).bias()
    }

    fn error_term(&self, item: &I) -> Option<u64> {
        (**self).error_term(item)
    }

    fn lower_estimate(&self, item: &I) -> u64 {
        (**self).lower_estimate(item)
    }

    fn upper_estimate(&self, item: &I) -> u64 {
        (**self).upper_estimate(item)
    }

    fn tail_constants(&self) -> Option<TailConstants> {
        (**self).tail_constants()
    }
}

/// A frequency estimator for real-weighted streams (Section 6.1 of the
/// paper: each arrival is `(item, b)` with `b ∈ ℝ⁺`).
pub trait WeightedFrequencyEstimator<I: Eq + Hash + Clone> {
    /// Short human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// The space budget `m`.
    fn capacity(&self) -> usize;

    /// Processes an arrival of `item` with weight `w ≥ 0`.
    fn update_weighted(&mut self, item: I, w: f64);

    /// The point estimate of the item's total weight.
    fn estimate_weighted(&self, item: &I) -> f64;

    /// Number of items currently stored.
    fn stored_len(&self) -> usize;

    /// Snapshot of stored `(item, estimate)` pairs sorted by decreasing
    /// estimate.
    fn entries_weighted(&self) -> Vec<(I, f64)>;

    /// Total weight processed so far.
    fn total_weight(&self) -> f64;

    /// The `(A, B)` tail constants (Theorem 10: `A = B = 1` for both
    /// FREQUENTR and SPACESAVINGR).
    fn tail_constants(&self) -> Option<TailConstants> {
        Some(TailConstants::ONE_ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_bound_evaluation() {
        let t = TailConstants::ONE_ONE;
        assert_eq!(t.bound(10, 2, 80), Some(10.0));
        assert_eq!(t.bound(2, 2, 80), None);
        let g = TailConstants::GENERIC;
        assert_eq!(g.bound(10, 2, 60), Some(10.0));
        assert_eq!(g.bound(4, 2, 60), None);
    }

    #[test]
    fn recovery_sizing() {
        let t = TailConstants::ONE_ONE;
        // m = k(3A/eps + B) = 2*(30+1) = 62
        assert_eq!(t.counters_for_sparse_recovery(2, 0.1, false), 62);
        // one-sided: m = k(2A/eps + B) = 2*(20+1) = 42
        assert_eq!(t.counters_for_sparse_recovery(2, 0.1, true), 42);
        // m = Bk + Ak/eps = 2 + 20 = 22
        assert_eq!(t.counters_for_residual_estimate(2, 0.1), 22);
    }

    #[test]
    fn merged_constants() {
        let m = TailConstants::ONE_ONE.merged();
        assert_eq!((m.a, m.b), (3.0, 2.0));
    }
}
