//! Direct transliterations of the Figure 1 pseudocode.
//!
//! These executors follow Algorithm 1 (FREQUENT) and Algorithm 2
//! (SPACESAVING) line by line with no data-structure cleverness: `O(m)` per
//! update for FREQUENT's decrement, `O(m)` minimum scans for SPACESAVING.
//! They exist so that the optimized implementations can be *conformance
//! tested*: on any stream, [`crate::Frequent`] must end in exactly the same
//! state as [`ReferenceFrequent`], and [`crate::SpaceSaving`] the same as
//! [`ReferenceSpaceSaving`].
//!
//! Tie-breaking: the paper (proof of Theorem 1) pins SPACESAVING's choice
//! among equal minimal counters; our implementations use the equivalent
//! *least-recently-updated* rule, which both the bucket list (FIFO within a
//! bucket) and this reference (explicit update-sequence stamps) realize
//! identically.

use std::collections::BTreeMap;
use std::hash::Hash;

use crate::traits::{Bias, FrequencyEstimator, TailConstants};

/// Algorithm 1 of the paper, executed naively.
#[derive(Debug, Clone)]
pub struct ReferenceFrequent<I: Ord + Clone> {
    t: BTreeMap<I, u64>,
    m: usize,
    stream_len: u64,
    decrements: u64,
}

impl<I: Ord + Clone> ReferenceFrequent<I> {
    /// Creates a reference executor with `m` counters.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1);
        ReferenceFrequent {
            t: BTreeMap::new(),
            m,
            stream_len: 0,
            decrements: 0,
        }
    }

    /// Number of decrement rounds performed.
    pub fn decrements(&self) -> u64 {
        self.decrements
    }

    /// The final state as a sorted `(item, counter)` map.
    pub fn state(&self) -> Vec<(I, u64)> {
        self.t.iter().map(|(i, &c)| (i.clone(), c)).collect()
    }
}

impl<I: Ord + Clone + Eq + Hash> FrequencyEstimator<I> for ReferenceFrequent<I> {
    fn name(&self) -> &'static str {
        "Frequent(reference)"
    }

    fn capacity(&self) -> usize {
        self.m
    }

    fn update(&mut self, item: I) {
        self.stream_len += 1;
        if let Some(c) = self.t.get_mut(&item) {
            *c += 1;
        } else if self.t.len() < self.m {
            self.t.insert(item, 1);
        } else {
            // forall j in T: c_j -= 1; drop zeros. The arriving item is not
            // stored (Algorithm 1).
            self.decrements += 1;
            for c in self.t.values_mut() {
                *c -= 1;
            }
            self.t.retain(|_, &mut c| c > 0);
        }
    }

    fn update_by(&mut self, item: I, count: u64) {
        for _ in 0..count {
            self.update(item.clone());
        }
    }

    fn estimate(&self, item: &I) -> u64 {
        self.t.get(item).copied().unwrap_or(0)
    }

    fn stored_len(&self) -> usize {
        self.t.len()
    }

    fn entries(&self) -> Vec<(I, u64)> {
        let mut v = self.state();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::Under
    }

    fn tail_constants(&self) -> Option<TailConstants> {
        Some(TailConstants::ONE_ONE)
    }
}

/// Algorithm 2 of the paper, executed naively with explicit
/// least-recently-updated tie-breaking.
#[derive(Debug, Clone)]
pub struct ReferenceSpaceSaving<I: Ord + Clone> {
    /// item -> (count, sequence number of the last count change)
    t: BTreeMap<I, (u64, u64)>,
    m: usize,
    seq: u64,
    stream_len: u64,
}

impl<I: Ord + Clone> ReferenceSpaceSaving<I> {
    /// Creates a reference executor with `m` counters.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1);
        ReferenceSpaceSaving {
            t: BTreeMap::new(),
            m,
            seq: 0,
            stream_len: 0,
        }
    }

    /// The final state as a sorted `(item, counter)` map.
    pub fn state(&self) -> Vec<(I, u64)> {
        self.t.iter().map(|(i, &(c, _))| (i.clone(), c)).collect()
    }
}

impl<I: Ord + Clone + Eq + Hash> FrequencyEstimator<I> for ReferenceSpaceSaving<I> {
    fn name(&self) -> &'static str {
        "SpaceSaving(reference)"
    }

    fn capacity(&self) -> usize {
        self.m
    }

    fn update(&mut self, item: I) {
        self.stream_len += 1;
        self.seq += 1;
        let seq = self.seq;
        if let Some((c, s)) = self.t.get_mut(&item) {
            *c += 1;
            *s = seq;
        } else if self.t.len() < self.m {
            self.t.insert(item, (1, seq));
        } else {
            // j <- argmin_j c_j, breaking ties towards the least recently
            // updated entry; replace j by the new item with count c_j + 1.
            let (j, min_count) = self
                .t
                .iter()
                .min_by_key(|&(_, &(c, s))| (c, s))
                .map(|(j, &(c, _))| (j.clone(), c))
                // lint:allow(panic-freedom) unreachable: this branch runs only when the table holds m counters, so a minimum exists
                .expect("table is full, hence non-empty");
            self.t.remove(&j);
            self.t.insert(item, (min_count + 1, seq));
        }
    }

    fn update_by(&mut self, item: I, count: u64) {
        for _ in 0..count {
            self.update(item.clone());
        }
    }

    fn estimate(&self, item: &I) -> u64 {
        self.t.get(item).map(|&(c, _)| c).unwrap_or(0)
    }

    fn stored_len(&self) -> usize {
        self.t.len()
    }

    fn entries(&self) -> Vec<(I, u64)> {
        let mut v = self.state();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::Over
    }

    fn tail_constants(&self) -> Option<TailConstants> {
        Some(TailConstants::ONE_ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequent::Frequent;
    use crate::space_saving::SpaceSaving;

    fn frequent_states_match(m: usize, stream: &[u64]) {
        let mut fast = Frequent::new(m);
        let mut slow = ReferenceFrequent::new(m);
        for &x in stream {
            fast.update(x);
            slow.update(x);
            let mut fs = fast.entries();
            fs.sort_unstable();
            assert_eq!(fs, slow.state(), "after prefix ending in {x}");
        }
        assert_eq!(fast.decrements(), slow.decrements());
    }

    fn spacesaving_states_match(m: usize, stream: &[u64]) {
        let mut fast = SpaceSaving::new(m);
        let mut slow = ReferenceSpaceSaving::new(m);
        for &x in stream {
            fast.update(x);
            slow.update(x);
            let mut fs: Vec<(u64, u64)> = fast.entries();
            fs.sort_unstable();
            assert_eq!(fs, slow.state(), "after prefix ending in {x}");
        }
    }

    #[test]
    fn frequent_conformance_on_mixed_stream() {
        let stream: Vec<u64> = (0..300).map(|i| (i * i + i / 3) % 11 + 1).collect();
        for m in [1, 2, 3, 5, 8] {
            frequent_states_match(m, &stream);
        }
    }

    #[test]
    fn spacesaving_conformance_on_mixed_stream() {
        let stream: Vec<u64> = (0..300).map(|i| (i * 7 + i * i / 5) % 13 + 1).collect();
        for m in [1, 2, 3, 5, 8] {
            spacesaving_states_match(m, &stream);
        }
    }

    #[test]
    fn spacesaving_conformance_with_many_ties() {
        // Round-robin keeps everything tied — maximal tie-break pressure.
        let stream: Vec<u64> = (0..200).map(|i| i % 10 + 1).collect();
        for m in [2, 4, 7] {
            spacesaving_states_match(m, &stream);
        }
    }

    #[test]
    fn frequent_conformance_with_many_ties() {
        let stream: Vec<u64> = (0..200).map(|i| i % 9 + 1).collect();
        for m in [2, 4, 6] {
            frequent_states_match(m, &stream);
        }
    }
}
