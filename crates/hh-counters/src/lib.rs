//! Counter-based heavy hitters with residual tail guarantees.
//!
//! This crate is the primary contribution of the reproduction of
//! *Space-optimal Heavy Hitters with Strong Error Bounds* (Berinde,
//! Cormode, Indyk, Strauss — PODS 2009): the FREQUENT and SPACESAVING
//! counter algorithms, their real-weighted extensions, and the machinery
//! around the paper's k-tail guarantee
//!
//! > `δ_i ≤ A · F1^res(k) / (m − B·k)` with `A = B = 1`,
//!
//! including sparse recovery (Section 4), summary merging (Section 6.2),
//! Zipfian sizing rules (Section 5) and an empirical heavy-tolerance
//! checker (Definitions 3–4).
//!
//! # Quick start
//!
//! ```
//! use hh_counters::{FrequencyEstimator, SpaceSaving};
//!
//! let mut ss = SpaceSaving::new(4); // m = 4 counters
//! for item in [1u64, 2, 1, 3, 1, 2, 5, 1, 6, 1] {
//!     ss.update(item);
//! }
//! // item 1 (frequency 5) dominates and is tracked accurately:
//! assert!(ss.estimate(&1) >= 5);
//! let (top, _) = ss.entries()[0].clone();
//! assert_eq!(top, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod error;
pub mod fasthash;
pub mod frequent;
pub mod heavy_hitters;
pub mod htc;
pub mod lossy_counting;
pub mod merge;
pub mod monitor;
pub mod oaindex;
pub mod parallel;
pub mod pool;
pub mod recovery;
pub mod reference;
pub mod space_saving;
pub mod sticky_sampling;
pub mod stream_summary;
pub mod topk;
pub mod traits;
pub mod underestimate;
pub mod weighted;

pub use error::Error;
pub use frequent::Frequent;
pub use heavy_hitters::{
    frequent_heavy_hitters, spacesaving_heavy_hitters, Confidence, HeavyHitter,
};
pub use lossy_counting::LossyCounting;
pub use reference::{ReferenceFrequent, ReferenceSpaceSaving};
pub use space_saving::{HeapSpaceSaving, SpaceSaving};
pub use sticky_sampling::StickySampling;
pub use stream_summary::StreamSummary;
pub use traits::{Bias, FrequencyEstimator, TailConstants, WeightedFrequencyEstimator};
pub use underestimate::{Correction, UnderestimatedSpaceSaving};
pub use weighted::{FrequentR, SpaceSavingR};
