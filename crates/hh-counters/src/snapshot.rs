//! Serializable summary snapshots.
//!
//! Distributed deployments (Section 6.2) ship summaries between machines;
//! a snapshot is the wire format: the stored `(item, count, err)` triples
//! plus the capacity and consumed stream length. Snapshots round-trip
//! through serde (JSON, or any other format) and can be rehydrated into a
//! live summary whose estimates — and therefore all guarantees — are
//! identical to the original's.
//!
//! ```
//! use hh_counters::{FrequencyEstimator, SpaceSaving};
//! use hh_counters::snapshot::SpaceSavingSnapshot;
//!
//! let mut ss = SpaceSaving::new(4);
//! for item in [1u64, 2, 1, 3, 1] { ss.update(item); }
//!
//! let snap = SpaceSavingSnapshot::from_summary(&ss);
//! let json = serde_json::to_string(&snap).unwrap();
//! let back: SpaceSavingSnapshot<u64> = serde_json::from_str(&json).unwrap();
//! let restored = back.into_summary();
//! assert_eq!(restored.estimate(&1), ss.estimate(&1));
//! assert_eq!(restored.stream_len(), ss.stream_len());
//! ```

use std::hash::Hash;

use serde::{Deserialize, Serialize};

use crate::frequent::Frequent;
use crate::space_saving::SpaceSaving;
use crate::traits::FrequencyEstimator;
use crate::weighted::SpaceSavingR;
use crate::WeightedFrequencyEstimator;

/// Wire format for a [`SpaceSaving`] summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceSavingSnapshot<I> {
    /// Counter capacity `m`.
    pub capacity: usize,
    /// Total stream length consumed.
    pub stream_len: u64,
    /// Stored `(item, count, err)` triples in descending count order.
    pub entries: Vec<(I, u64, u64)>,
}

impl<I: Eq + Hash + Clone> SpaceSavingSnapshot<I> {
    /// Captures a snapshot of a live summary.
    pub fn from_summary(summary: &SpaceSaving<I>) -> Self {
        SpaceSavingSnapshot {
            capacity: summary.capacity(),
            stream_len: summary.stream_len(),
            entries: summary.entries_with_err(),
        }
    }

    /// Rehydrates the snapshot into a live summary with identical estimates,
    /// error annotations and guarantees.
    ///
    /// Panics if the snapshot is inconsistent (more entries than capacity,
    /// `err > count`, duplicate items, or counts exceeding the stream
    /// length) — snapshots are trusted state, so corruption is a bug, not
    /// an input error.
    pub fn into_summary(self) -> SpaceSaving<I> {
        assert!(
            self.entries.len() <= self.capacity,
            "snapshot holds more entries than its capacity"
        );
        let total: u64 = self.entries.iter().map(|&(_, c, _)| c).sum();
        assert!(
            total == self.stream_len,
            "SpaceSaving counter mass must equal stream length"
        );
        let mut s = SpaceSaving::restore(self.capacity, self.stream_len);
        // Insert in ascending order so the bucket FIFO (and hence future
        // tie-breaking) matches the original summary exactly.
        for (item, count, err) in self.entries.into_iter().rev() {
            assert!(err <= count, "err must not exceed count");
            s.restore_entry(item, count, err);
        }
        s
    }
}

/// Wire format for a [`Frequent`] summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequentSnapshot<I> {
    /// Counter capacity `m`.
    pub capacity: usize,
    /// Total stream length consumed.
    pub stream_len: u64,
    /// Decrement rounds performed (`d` in Appendix B).
    pub decrements: u64,
    /// Stored `(item, logical value)` pairs in descending order.
    pub entries: Vec<(I, u64)>,
}

impl<I: Eq + Hash + Clone> FrequentSnapshot<I> {
    /// Captures a snapshot of a live summary.
    pub fn from_summary(summary: &Frequent<I>) -> Self {
        FrequentSnapshot {
            capacity: summary.capacity(),
            stream_len: summary.stream_len(),
            decrements: summary.decrements(),
            entries: summary.entries(),
        }
    }

    /// Rehydrates into a live summary with identical estimates and
    /// decrement count.
    pub fn into_summary(self) -> Frequent<I> {
        assert!(
            self.entries.len() <= self.capacity,
            "snapshot holds more entries than its capacity"
        );
        let mut s = Frequent::restore(self.capacity, self.stream_len, self.decrements);
        // Ascending insertion preserves the bucket FIFO order (see the
        // SPACESAVING rehydration note).
        for (item, value) in self.entries.into_iter().rev() {
            assert!(value > 0, "stored values are positive");
            s.restore_entry(item, value);
        }
        s
    }
}

/// Wire format for a weighted [`SpaceSavingR`] summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceSavingRSnapshot<I> {
    /// Counter capacity `m`.
    pub capacity: usize,
    /// Total stream weight consumed.
    pub total_weight: f64,
    /// Stored `(item, weight, err)` triples in descending weight order.
    pub entries: Vec<(I, f64, f64)>,
}

impl<I: Eq + Hash + Clone + Ord> SpaceSavingRSnapshot<I> {
    /// Captures a snapshot of a live weighted summary.
    pub fn from_summary(summary: &SpaceSavingR<I>) -> Self {
        let entries = summary
            .entries_weighted()
            .into_iter()
            .map(|(i, w)| {
                let err = summary.err(&i).expect("entry exists");
                (i, w, err)
            })
            .collect();
        SpaceSavingRSnapshot {
            capacity: summary.capacity(),
            total_weight: summary.total_weight(),
            entries,
        }
    }

    /// Rehydrates into a live weighted summary.
    pub fn into_summary(self) -> SpaceSavingR<I> {
        assert!(self.entries.len() <= self.capacity);
        let mut s = SpaceSavingR::restore(self.capacity, self.total_weight);
        for (item, weight, err) in self.entries {
            assert!(err <= weight + 1e-9, "err must not exceed weight");
            s.restore_entry(item, weight, err);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spacesaving_fixture() -> SpaceSaving<u64> {
        let mut ss = SpaceSaving::new(5);
        for i in 0..200u64 {
            ss.update(i * i % 17);
        }
        ss
    }

    #[test]
    fn spacesaving_roundtrip_preserves_everything() {
        let ss = spacesaving_fixture();
        let snap = SpaceSavingSnapshot::from_summary(&ss);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: SpaceSavingSnapshot<u64> = serde_json::from_str(&json).expect("deserialize");
        let restored = back.into_summary();
        restored.check_invariants();
        assert_eq!(restored.stream_len(), ss.stream_len());
        assert_eq!(restored.entries_with_err(), ss.entries_with_err());
        for i in 0..17u64 {
            assert_eq!(restored.estimate(&i), ss.estimate(&i));
            assert_eq!(restored.guaranteed_count(&i), ss.guaranteed_count(&i));
        }
        assert_eq!(restored.min_counter(), ss.min_counter());
    }

    #[test]
    fn restored_summary_continues_correctly() {
        let mut ss = spacesaving_fixture();
        let mut restored = SpaceSavingSnapshot::from_summary(&ss).into_summary();
        // both continue with the same suffix -> identical states
        for i in 200..400u64 {
            ss.update(i * i % 17);
            restored.update(i * i % 17);
        }
        assert_eq!(ss.entries_with_err(), restored.entries_with_err());
    }

    #[test]
    fn frequent_roundtrip() {
        let mut fr = Frequent::new(4);
        for i in 0..150u64 {
            fr.update(i % 9);
        }
        let snap = FrequentSnapshot::from_summary(&fr);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: FrequentSnapshot<u64> = serde_json::from_str(&json).expect("deserialize");
        let restored = back.into_summary();
        restored.check_invariants();
        assert_eq!(restored.decrements(), fr.decrements());
        assert_eq!(restored.stream_len(), fr.stream_len());
        for i in 0..9u64 {
            assert_eq!(restored.estimate(&i), fr.estimate(&i));
            assert_eq!(restored.upper_estimate(&i), fr.upper_estimate(&i));
        }
    }

    #[test]
    fn weighted_roundtrip() {
        let mut ssr = SpaceSavingR::new(4);
        for i in 0..100u64 {
            ssr.update_weighted(i % 11, 0.5 + (i % 7) as f64);
        }
        let snap = SpaceSavingRSnapshot::from_summary(&ssr);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: SpaceSavingRSnapshot<u64> = serde_json::from_str(&json).expect("deserialize");
        let restored = back.into_summary();
        assert!((restored.total_weight() - ssr.total_weight()).abs() < 1e-12);
        for i in 0..11u64 {
            assert!((restored.estimate_weighted(&i) - ssr.estimate_weighted(&i)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "counter mass")]
    fn corrupt_snapshot_rejected() {
        let snap = SpaceSavingSnapshot {
            capacity: 2,
            stream_len: 100, // inconsistent with entries
            entries: vec![(1u64, 3, 0)],
        };
        let _ = snap.into_summary();
    }

    #[test]
    fn snapshot_works_with_string_items() {
        let mut ss: SpaceSaving<String> = SpaceSaving::new(3);
        for word in ["the", "cat", "the", "hat", "the"] {
            ss.update(word.to_string());
        }
        let snap = SpaceSavingSnapshot::from_summary(&ss);
        let json = serde_json::to_string(&snap).expect("serialize");
        let restored: SpaceSavingSnapshot<String> =
            serde_json::from_str(&json).expect("deserialize");
        assert_eq!(restored.into_summary().estimate(&"the".to_string()), 3);
    }
}
