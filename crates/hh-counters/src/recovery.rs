//! Sparse recovery from counter summaries (Section 4 of the paper).
//!
//! * [`k_sparse`] — Theorem 5: keep the k largest counters; the resulting
//!   k-sparse vector `f'` has `‖f − f'‖_p ≤ ε·F1^res(k)/k^{1−1/p} +
//!   (F_p^res(k))^{1/p}` when the algorithm is run with `m = k(3A/ε + B)`
//!   counters (`2A` instead of `3A` suffices for one-sided algorithms).
//! * [`residual_estimate`] — Theorem 6: `F1 − ‖f'‖₁` brackets `F1^res(k)`
//!   within `(1 ± ε)` when `m = Bk + Ak/ε`.
//! * [`m_sparse`] — Theorem 7: keep *all* counters of an underestimating
//!   algorithm; `‖f − f'‖_p ≤ (1+ε)(ε/k)^{1−1/p} F1^res(k)`.
//!
//! These functions operate purely on summary snapshots; the experiment
//! harness in `hh-analysis` compares the recovered vectors against ground
//! truth.

use std::hash::Hash;

use crate::traits::FrequencyEstimator;

/// A sparse non-negative vector recovered from a summary: `(item, value)`
/// pairs with distinct items and positive values, sorted by decreasing
/// value.
pub type SparseVector<I> = Vec<(I, u64)>;

/// Theorem 5 recovery: the `k` largest counters of the summary.
///
/// Ties at the boundary are resolved by the summary's own entry order (its
/// eviction order), matching the arbitrary choice the theorem allows.
pub fn k_sparse<I, E>(summary: &E, k: usize) -> SparseVector<I>
where
    I: Eq + Hash + Clone,
    E: FrequencyEstimator<I> + ?Sized,
{
    let mut entries = summary.entries();
    entries.truncate(k);
    entries.retain(|&(_, c)| c > 0);
    entries
}

/// Theorem 7 recovery: *all* stored counters. Only meaningful for
/// underestimating summaries (FREQUENT, or SPACESAVING through
/// [`crate::underestimate::UnderestimatedSpaceSaving::entries`]).
pub fn m_sparse<I, E>(summary: &E) -> SparseVector<I>
where
    I: Eq + Hash + Clone,
    E: FrequencyEstimator<I> + ?Sized,
{
    let mut entries = summary.entries();
    entries.retain(|&(_, c)| c > 0);
    entries
}

/// Theorem 6 estimator for the residual `F1^res(k)`: the stream length
/// minus the mass captured by the k largest counters.
pub fn residual_estimate<I, E>(summary: &E, k: usize) -> u64
where
    I: Eq + Hash + Clone,
    E: FrequencyEstimator<I> + ?Sized,
{
    let recovered: u64 = k_sparse(summary, k).iter().map(|&(_, c)| c).sum();
    summary.stream_len().saturating_sub(recovered)
}

/// `‖v‖₁` of a sparse vector.
pub fn l1_norm<I>(v: &[(I, u64)]) -> u64 {
    v.iter().map(|&(_, c)| c).sum()
}

/// Weighted analogue of [`k_sparse`]: the k heaviest counters of a
/// weighted summary (Section 6.1 algorithms). Theorem 5's proof is
/// weight-agnostic, so the same recovery bound applies over the weight
/// vector.
pub fn k_sparse_weighted<I, E>(summary: &E, k: usize) -> Vec<(I, f64)>
where
    I: Eq + Hash + Clone,
    E: crate::traits::WeightedFrequencyEstimator<I> + ?Sized,
{
    let mut entries = summary.entries_weighted();
    entries.truncate(k);
    entries.retain(|&(_, w)| w > 0.0);
    entries
}

/// Weighted analogue of [`residual_estimate`] (Theorem 6 over weights):
/// total stream weight minus the mass of the k heaviest counters.
pub fn residual_estimate_weighted<I, E>(summary: &E, k: usize) -> f64
where
    I: Eq + Hash + Clone,
    E: crate::traits::WeightedFrequencyEstimator<I> + ?Sized,
{
    let recovered: f64 = k_sparse_weighted(summary, k).iter().map(|&(_, w)| w).sum();
    (summary.total_weight() - recovered).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space_saving::SpaceSaving;

    fn summary_from(stream: &[u64], m: usize) -> SpaceSaving<u64> {
        let mut s = SpaceSaving::new(m);
        for &x in stream {
            s.update(x);
        }
        s
    }

    #[test]
    fn k_sparse_returns_top_counters() {
        let stream = [1u64, 1, 1, 2, 2, 3];
        let s = summary_from(&stream, 10);
        let v = k_sparse(&s, 2);
        assert_eq!(v, vec![(1, 3), (2, 2)]);
    }

    #[test]
    fn k_sparse_drops_zero_estimates() {
        let s = summary_from(&[], 4);
        assert!(k_sparse(&s, 3).is_empty());
    }

    #[test]
    fn k_sparse_truncates_to_k() {
        let stream = [1u64, 2, 3, 4, 5];
        let s = summary_from(&stream, 10);
        assert_eq!(k_sparse(&s, 2).len(), 2);
        assert_eq!(k_sparse(&s, 100).len(), 5);
    }

    #[test]
    fn residual_estimate_exact_when_table_big_enough() {
        // table holds everything exactly => estimate == true residual
        let stream = [1u64, 1, 1, 1, 2, 2, 3, 4];
        let s = summary_from(&stream, 10);
        // F1=8, top-2 carries 6, residual = 2
        assert_eq!(residual_estimate(&s, 2), 2);
        assert_eq!(residual_estimate(&s, 0), 8);
        assert_eq!(residual_estimate(&s, 4), 0);
    }

    #[test]
    fn weighted_recovery_and_residual() {
        use crate::traits::WeightedFrequencyEstimator;
        use crate::weighted::SpaceSavingR;
        let mut s = SpaceSavingR::new(10);
        for (item, w) in [(1u64, 5.0), (2, 3.0), (3, 1.0), (1, 2.0)] {
            s.update_weighted(item, w);
        }
        let rec = k_sparse_weighted(&s, 2);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec[0].0, 1);
        assert!((rec[0].1 - 7.0).abs() < 1e-12);
        // F1 = 11, top-2 = 10, residual = 1
        assert!((residual_estimate_weighted(&s, 2) - 1.0).abs() < 1e-12);
        assert!((residual_estimate_weighted(&s, 0) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn m_sparse_keeps_everything_positive() {
        let stream = [1u64, 2, 2, 3, 3, 3];
        let s = summary_from(&stream, 10);
        let v = m_sparse(&s);
        assert_eq!(v.len(), 3);
        assert_eq!(l1_norm(&v), 6);
    }
}
