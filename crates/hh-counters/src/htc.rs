//! Empirical machinery for the *heavy-tolerant counter* (HTC) definitions
//! (Definitions 3–4) and Theorem 1.
//!
//! Definition 3 quantifies over **all subsequences** of the stream suffix,
//! so exact checking is exponential; these helpers are meant for the small
//! streams used by the model-checking style tests and the `exp_htc`
//! experiment, where exhaustive enumeration is feasible (suffix lengths up
//! to ~16).

use std::collections::BTreeMap;
use std::hash::Hash;

use crate::traits::FrequencyEstimator;

/// Runs a fresh estimator over `stream` and returns the absolute error
/// `δ_j = |f_j − c_j|` for every distinct item of `universe`.
pub fn error_vector<I, A, F>(make: F, stream: &[I], universe: &[I]) -> BTreeMap<I, u64>
where
    I: Eq + Hash + Clone + Ord,
    A: FrequencyEstimator<I>,
    F: Fn() -> A,
{
    let mut algo = make();
    let mut exact: BTreeMap<I, u64> = BTreeMap::new();
    for x in stream {
        algo.update(x.clone());
        *exact.entry(x.clone()).or_insert(0) += 1;
    }
    universe
        .iter()
        .map(|j| {
            let f = exact.get(j).copied().unwrap_or(0);
            let c = algo.estimate(j);
            (j.clone(), f.abs_diff(c))
        })
        .collect()
}

/// Exact check of Definition 3: is `item` x-prefix guaranteed for `stream`?
///
/// Enumerates all `2^(s−x)` subsequences of the suffix and verifies the
/// item keeps a positive counter on every one. Exponential — use only on
/// short suffixes.
pub fn is_prefix_guaranteed<I, A, F>(make: F, stream: &[I], x: usize, item: &I) -> bool
where
    I: Eq + Hash + Clone,
    A: FrequencyEstimator<I>,
    F: Fn() -> A,
{
    assert!(x < stream.len(), "Definition 3 requires x < s");
    let suffix = &stream[x..];
    let n = suffix.len();
    assert!(
        n <= 24,
        "exhaustive subsequence check limited to short suffixes"
    );
    for mask in 0u64..(1u64 << n) {
        let mut algo = make();
        for u in &stream[..x] {
            algo.update(u.clone());
        }
        for (bit, u) in suffix.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                algo.update(u.clone());
            }
        }
        if algo.estimate(item) == 0 {
            return false;
        }
    }
    true
}

/// One violation of the heavy-tolerance property (Definition 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtcViolation<I> {
    /// 0-based stream position whose removal *decreased* some error.
    pub position: usize,
    /// The (prefix-guaranteed) item occurring at that position.
    pub item: I,
    /// The item whose error increased by keeping the occurrence.
    pub witness: I,
    /// `δ_witness` on the full stream.
    pub delta_with: u64,
    /// `δ_witness` with the occurrence removed.
    pub delta_without: u64,
}

/// Exhaustively checks Definition 4 on `stream`: for every position `x`
/// whose item is (x−1)-prefix guaranteed, removing that occurrence must not
/// decrease any item's estimation error. Returns all violations (empty for
/// heavy-tolerant algorithms — Theorem 1 proves FREQUENT and SPACESAVING
/// never produce any).
pub fn check_heavy_tolerance<I, A, F>(make: F, stream: &[I]) -> Vec<HtcViolation<I>>
where
    I: Eq + Hash + Clone + Ord,
    A: FrequencyEstimator<I>,
    F: Fn() -> A,
{
    let mut universe: Vec<I> = stream.to_vec();
    universe.sort();
    universe.dedup();

    let mut violations = Vec::new();
    for x in 0..stream.len() {
        let item = &stream[x];
        if !is_prefix_guaranteed(&make, stream, x, item) {
            continue;
        }
        // the stream with position x removed
        let mut without: Vec<I> = Vec::with_capacity(stream.len() - 1);
        without.extend_from_slice(&stream[..x]);
        without.extend_from_slice(&stream[x + 1..]);

        let with_deltas = error_vector(&make, stream, &universe);
        let without_deltas = error_vector(&make, &without, &universe);
        for j in &universe {
            let dw = with_deltas[j];
            let dwo = without_deltas[j];
            if dw > dwo {
                violations.push(HtcViolation {
                    position: x,
                    item: item.clone(),
                    witness: j.clone(),
                    delta_with: dw,
                    delta_without: dwo,
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequent::Frequent;
    use crate::space_saving::SpaceSaving;

    #[test]
    fn error_vector_exact_when_room() {
        let stream = [1u64, 1, 2];
        let d = error_vector(|| SpaceSaving::new(4), &stream, &[1, 2, 3]);
        assert_eq!(d[&1], 0);
        assert_eq!(d[&2], 0);
        assert_eq!(d[&3], 0);
    }

    #[test]
    fn prefix_guarantee_detected_for_dominant_item() {
        // 1 occurs 5 times in the prefix; suffix is 3 other items with m=2.
        // After the prefix, 1's counter is 5 and can lose at most... for
        // SpaceSaving with m=2: suffix 2,3,4 can push min counter up, but
        // 1's counter stays the max; it is never the argmin => guaranteed.
        let stream = [1u64, 1, 1, 1, 1, 2, 3, 4];
        assert!(is_prefix_guaranteed(|| SpaceSaving::new(2), &stream, 5, &1));
    }

    #[test]
    fn prefix_guarantee_fails_for_singleton_under_pressure() {
        // 1 occurs once, then m=1 and another item arrives: 1 gets evicted
        // on the subsequence containing 2.
        let stream = [1u64, 2];
        assert!(!is_prefix_guaranteed(
            || SpaceSaving::new(1),
            &stream,
            1,
            &1
        ));
        assert!(!is_prefix_guaranteed(|| Frequent::new(1), &stream, 1, &1));
    }

    #[test]
    fn frequent_is_heavy_tolerant_on_small_streams() {
        let streams: [&[u64]; 4] = [
            &[1, 1, 1, 2, 3, 1, 2],
            &[1, 2, 3, 4, 1, 1, 2],
            &[5, 5, 5, 5, 1, 2, 3],
            &[1, 2, 1, 2, 3, 3, 3],
        ];
        for s in streams {
            for m in [1, 2, 3] {
                let v = check_heavy_tolerance(|| Frequent::new(m), s);
                assert!(v.is_empty(), "m={m}, stream={s:?}: {v:?}");
            }
        }
    }

    #[test]
    fn spacesaving_is_heavy_tolerant_on_small_streams() {
        let streams: [&[u64]; 4] = [
            &[1, 1, 1, 2, 3, 1, 2],
            &[1, 2, 3, 4, 1, 1, 2],
            &[5, 5, 5, 5, 1, 2, 3],
            &[2, 2, 1, 1, 3, 2, 1],
        ];
        for s in streams {
            for m in [1, 2, 3] {
                let v = check_heavy_tolerance(|| SpaceSaving::new(m), s);
                assert!(v.is_empty(), "m={m}, stream={s:?}: {v:?}");
            }
        }
    }
}
