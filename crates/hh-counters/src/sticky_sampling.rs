//! STICKY SAMPLING — Manku & Motwani's *randomized* counter algorithm,
//! the remaining counter comparator from the survey (\[10\]) the paper's
//! motivation builds on.
//!
//! The table stores sampled items with counts. The sampling rate `r`
//! doubles epoch by epoch (epoch `t` covers `2t` windows of `w = (1/ε)·
//! ln(1/(s·δ))` arrivals); a new item is admitted with probability `1/r`,
//! and at each rate change every stored entry is re-thinned by simulating
//! the coin flips it would have survived. Estimates underestimate; with
//! probability `1−δ` all items with frequency above `sN` are reported
//! with error at most `εN`.
//!
//! Unlike FREQUENT/SPACESAVING this algorithm is randomized and its
//! guarantee is probabilistic — which is exactly the contrast the paper
//! draws; it carries **no** deterministic k-tail guarantee
//! (`tail_constants()` is `None`).

use std::hash::Hash;

use crate::error::Error;
use crate::fasthash::FxHashMap;
use crate::traits::{Bias, FrequencyEstimator, TailConstants};

/// Minimal xorshift PRNG so the crate stays dependency-free (randomness
/// quality needs here are modest: geometric coin flips).
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A uniform f64 in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p`.
    fn flip(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// The STICKY SAMPLING summary.
#[derive(Debug, Clone)]
pub struct StickySampling<I: Eq + Hash + Clone> {
    table: FxHashMap<I, u64>,
    rng: XorShift64,
    /// Current sampling rate (an entry is admitted with prob 1/rate).
    rate: u64,
    /// Arrivals remaining until the next rate doubling.
    until_double: u64,
    /// Window parameter `w = (1/ε)·ln(1/(sδ))`.
    window: u64,
    epsilon: f64,
    stream_len: u64,
    max_table: usize,
}

impl<I: Eq + Hash + Clone> StickySampling<I> {
    /// Creates a summary with error `ε`, support `s`, failure probability
    /// `δ`, and a seed.
    pub fn new(epsilon: f64, support: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        assert!(support > 0.0 && support < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let window = ((1.0 / epsilon) * (1.0 / (support * delta)).ln())
            .ceil()
            .max(1.0) as u64;
        StickySampling {
            table: FxHashMap::default(),
            rng: XorShift64::new(seed),
            rate: 1,
            // first epoch: 2w arrivals at rate 1 (t = 1)
            until_double: 2 * window,
            window,
            epsilon,
            stream_len: 0,
            max_table: 0,
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// High-water mark of the table size.
    pub fn max_table_len(&self) -> usize {
        self.max_table
    }

    /// Current sampling rate.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// The window parameter `w = (1/ε)·ln(1/(sδ))`.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Arrivals remaining until the next rate doubling.
    pub fn until_double(&self) -> u64 {
        self.until_double
    }

    /// The PRNG's current state word (snapshot capture — restoring it makes
    /// a rehydrated instance continue the exact same coin-flip sequence).
    pub fn rng_state(&self) -> u64 {
        self.rng.state
    }

    /// Stored `(item, count)` pairs sorted by decreasing count — the full
    /// table state (snapshot capture).
    pub fn entries_sorted(&self) -> Vec<(I, u64)> {
        self.entries()
    }

    /// Rebuilds a summary from snapshot parts (the table is unordered, so
    /// entry order does not matter). The restored instance continues with
    /// the identical sampling schedule and coin-flip sequence.
    ///
    /// Returns [`Error::CorruptSnapshot`] on inconsistent parts (rate or
    /// window of 0, `epsilon ∉ (0,1)`, zero counts, duplicates).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        epsilon: f64,
        window: u64,
        rate: u64,
        until_double: u64,
        rng_state: u64,
        stream_len: u64,
        max_table: usize,
        entries: Vec<(I, u64)>,
    ) -> Result<Self, Error> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(Error::corrupt_snapshot("epsilon must be in (0, 1)"));
        }
        if window == 0 || rate == 0 || until_double == 0 {
            return Err(Error::corrupt_snapshot(
                "window, rate and until_double must be positive",
            ));
        }
        if max_table < entries.len() {
            return Err(Error::corrupt_snapshot(format!(
                "high-water mark {max_table} below table size {}",
                entries.len()
            )));
        }
        let mut table = FxHashMap::default();
        for (item, count) in entries {
            if count == 0 {
                return Err(Error::corrupt_snapshot("stored counts must be positive"));
            }
            if table.insert(item, count).is_some() {
                return Err(Error::corrupt_snapshot("duplicate item in snapshot"));
            }
        }
        Ok(StickySampling {
            table,
            rng: XorShift64 {
                state: rng_state.max(1),
            },
            rate,
            until_double,
            window,
            epsilon,
            stream_len,
            max_table,
        })
    }

    /// Absorbs another STICKY SAMPLING summary's snapshot state: a direct
    /// table union (counts add) plus the donor's stream length. O(m) — the
    /// donor's sample is *not* replayed through the sampler, which would
    /// cost O(total count) in coin flips and re-thin already-thinned
    /// counts, compounding undersampling on every merge hop. Both sides'
    /// counts underestimate their streams, so the union keeps
    /// underestimating the combined one; the local sampling schedule
    /// (rate, epoch) continues unchanged.
    pub fn absorb_parts(&mut self, entries: Vec<(I, u64)>, stream_len: u64) {
        for (item, count) in entries {
            if count == 0 {
                continue;
            }
            *self.table.entry(item).or_insert(0) += count;
        }
        self.stream_len += stream_len;
        self.max_table = self.max_table.max(self.table.len());
    }

    fn double_rate(&mut self) {
        self.rate *= 2;
        // Re-thin: each stored entry repeatedly loses one count per
        // unsuccessful coin at the *new* rate; geometric thinning per [24].
        let mut dead = Vec::new();
        for (item, count) in self.table.iter_mut() {
            // toss an unbiased coin until success; each failure decrements
            while *count > 0 && self.rng.flip(0.5) {
                *count -= 1;
            }
            if *count == 0 {
                dead.push(item.clone());
            }
        }
        for d in dead {
            self.table.remove(&d);
        }
    }
}

impl<I: Eq + Hash + Clone> FrequencyEstimator<I> for StickySampling<I> {
    fn name(&self) -> &'static str {
        "StickySampling"
    }

    /// No fixed budget; reports the high-water table size (like
    /// LOSSYCOUNTING).
    fn capacity(&self) -> usize {
        self.max_table
    }

    fn update(&mut self, item: I) {
        self.stream_len += 1;
        if let Some(c) = self.table.get_mut(&item) {
            *c += 1;
        } else if self.rate == 1 || self.rng.flip(1.0 / self.rate as f64) {
            self.table.insert(item, 1);
        }
        self.max_table = self.max_table.max(self.table.len());
        self.until_double -= 1;
        if self.until_double == 0 {
            self.double_rate();
            // epoch t covers t·w arrivals at rate 2^t; doubling the rate
            // doubles the epoch length
            self.until_double = 2 * self.window * self.rate;
        }
    }

    fn update_by(&mut self, item: I, count: u64) {
        for _ in 0..count {
            self.update(item.clone());
        }
    }

    fn estimate(&self, item: &I) -> u64 {
        self.table.get(item).copied().unwrap_or(0)
    }

    fn stored_len(&self) -> usize {
        self.table.len()
    }

    fn entries(&self) -> Vec<(I, u64)> {
        let mut v: Vec<(I, u64)> = self.table.iter().map(|(i, &c)| (i.clone(), c)).collect();
        v.sort_unstable_by_key(|e| std::cmp::Reverse(e.1));
        v
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::Under
    }

    fn tail_constants(&self) -> Option<TailConstants> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_before_first_doubling() {
        // rate stays 1 for the first 2w arrivals: counting is exact
        let mut s: StickySampling<u64> = StickySampling::new(0.1, 0.1, 0.1, 7);
        let horizon = 2 * s.window;
        for i in 0..horizon.min(40) {
            s.update(i % 5);
        }
        let n = horizon.min(40);
        for i in 0..5u64 {
            let f = (n / 5) + u64::from(i < n % 5);
            assert_eq!(s.estimate(&i), f);
        }
    }

    #[test]
    fn underestimates_always() {
        let stream: Vec<u64> = (0..20_000).map(|i| i % 113).collect();
        let mut s: StickySampling<u64> = StickySampling::new(0.01, 0.01, 0.1, 3);
        for &x in &stream {
            s.update(x);
        }
        for i in 0..113u64 {
            let f = stream.iter().filter(|&&x| x == i).count() as u64;
            assert!(s.estimate(&i) <= f, "item {i}");
        }
    }

    #[test]
    fn heavy_items_survive_with_small_error_whp() {
        // one item carries 30% of a long stream; with eps=0.01 its sampled
        // count must be within ~eps*N of exact (whp; seed fixed)
        let mut stream = Vec::new();
        for i in 0..30_000u64 {
            stream.push(if i % 10 < 3 { 999u64 } else { i % 500 });
        }
        let mut s: StickySampling<u64> = StickySampling::new(0.01, 0.05, 0.1, 11);
        for &x in &stream {
            s.update(x);
        }
        let exact = stream.iter().filter(|&&x| x == 999).count() as u64;
        let est = s.estimate(&999);
        assert!(est <= exact);
        assert!(
            exact - est <= (0.02 * stream.len() as f64) as u64,
            "heavy item error too large: {est} vs {exact}"
        );
    }

    #[test]
    fn table_stays_sublinear() {
        // 50k distinct singletons: the table must stay near O(w), far
        // below the number of distinct items
        let mut s: StickySampling<u64> = StickySampling::new(0.01, 0.01, 0.1, 5);
        for i in 0..50_000u64 {
            s.update(i);
        }
        assert!(
            s.max_table_len() < 10_000,
            "table grew to {}",
            s.max_table_len()
        );
    }

    #[test]
    fn seeded_determinism() {
        let mut a: StickySampling<u64> = StickySampling::new(0.05, 0.05, 0.1, 42);
        let mut b: StickySampling<u64> = StickySampling::new(0.05, 0.05, 0.1, 42);
        for i in 0..5_000u64 {
            a.update(i % 200);
            b.update(i % 200);
        }
        assert_eq!(a.entries(), b.entries());
    }
}
