//! LOSSYCOUNTING — Manku & Motwani's deterministic counter algorithm,
//! included as the third counter comparator from Table 1.
//!
//! The stream is conceptually divided into windows of width `w = ⌈1/ε⌉`.
//! Each stored entry carries `(count, delta)` where `delta` is the maximum
//! number of occurrences it may have missed before being inserted. At every
//! window boundary, entries with `count + delta ≤ current_window` are
//! pruned. Estimates underestimate with `f_i − εN ≤ c_i ≤ f_i`.
//!
//! Unlike FREQUENT/SPACESAVING its space is *not* fixed: the table grows
//! and shrinks, using `O(1/ε · log(εN))` entries in the worst case and
//! `O(1/ε)` on random-order streams (\[24\], discussed in Section 1.1 of the
//! paper — our `exp_lossy_adversarial` experiment reproduces exactly this
//! gap). [`LossyCounting::max_table_len`] records the high-water mark.

use std::hash::Hash;

use crate::error::Error;
use crate::fasthash::FxHashMap;
use crate::traits::{Bias, FrequencyEstimator, TailConstants};

/// The LOSSYCOUNTING summary with error parameter `ε`.
#[derive(Debug, Clone)]
pub struct LossyCounting<I: Eq + Hash + Clone> {
    /// item -> (count, delta)
    table: FxHashMap<I, (u64, u64)>,
    /// Window width `w = ⌈1/ε⌉`.
    width: u64,
    /// Current window id `b = ⌈N/w⌉`.
    window: u64,
    stream_len: u64,
    max_table: usize,
}

impl<I: Eq + Hash + Clone> LossyCounting<I> {
    /// Creates a summary with error parameter `0 < epsilon ≤ 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        let width = (1.0 / epsilon).ceil() as u64;
        LossyCounting {
            table: FxHashMap::default(),
            width,
            window: 1,
            stream_len: 0,
            max_table: 0,
        }
    }

    /// Creates a summary whose window width is exactly `width` (i.e.
    /// `ε = 1/width`).
    pub fn with_width(width: u64) -> Self {
        assert!(width >= 1);
        LossyCounting {
            table: FxHashMap::default(),
            width,
            window: 1,
            stream_len: 0,
            max_table: 0,
        }
    }

    /// The error parameter `ε = 1/w`.
    pub fn epsilon(&self) -> f64 {
        1.0 / self.width as f64
    }

    /// High-water mark of the table size — the actual space the algorithm
    /// needed on this stream (the quantity the adversarial-ordering
    /// experiment measures).
    pub fn max_table_len(&self) -> usize {
        self.max_table
    }

    /// The window width `w = ⌈1/ε⌉`.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// The current window id `b = ⌈N/w⌉` (starts at 1).
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Stored `(item, count, delta)` triples, sorted by decreasing count —
    /// the full per-entry state (snapshot capture).
    pub fn entries_with_delta(&self) -> Vec<(I, u64, u64)> {
        let mut v: Vec<(I, u64, u64)> = self
            .table
            .iter()
            .map(|(i, &(c, d))| (i.clone(), c, d))
            .collect();
        v.sort_unstable_by_key(|e| std::cmp::Reverse(e.1));
        v
    }

    /// Rebuilds a summary from snapshot parts. The table is unordered, so
    /// entry order does not matter; `max_table` is the recorded high-water
    /// mark (must be at least the entry count).
    ///
    /// Returns [`Error::CorruptSnapshot`] on inconsistent parts (zero
    /// width/window, `delta ≥ window`, zero counts, duplicates, or a
    /// high-water mark below the table size).
    pub fn from_parts(
        width: u64,
        window: u64,
        stream_len: u64,
        max_table: usize,
        entries: Vec<(I, u64, u64)>,
    ) -> Result<Self, Error> {
        if width == 0 || window == 0 {
            return Err(Error::corrupt_snapshot("width and window must be positive"));
        }
        // The window id must have kept pace with the stream: organically
        // `b = ⌊N/w⌋ + 1` and merged summaries sum window ids, so `b` can
        // never fall below `⌊N/w⌋`. A smaller value would make the
        // `window − 1` upper bound for unstored items unsound.
        if window < stream_len / width {
            return Err(Error::corrupt_snapshot(format!(
                "window id {window} inconsistent with stream length {stream_len} at width {width}"
            )));
        }
        if max_table < entries.len() {
            return Err(Error::corrupt_snapshot(format!(
                "high-water mark {max_table} below table size {}",
                entries.len()
            )));
        }
        let mut s = Self::with_width(width);
        s.window = window;
        s.stream_len = stream_len;
        s.max_table = max_table;
        for (item, count, delta) in entries {
            if count == 0 {
                return Err(Error::corrupt_snapshot("stored counts must be positive"));
            }
            if delta >= window {
                return Err(Error::corrupt_snapshot(
                    "delta must be a past window id (< window)",
                ));
            }
            if s.table.insert(item, (count, delta)).is_some() {
                return Err(Error::corrupt_snapshot("duplicate item in snapshot"));
            }
        }
        Ok(s)
    }

    /// Absorbs another LOSSYCOUNTING summary's snapshot state (same width)
    /// — the Manku–Motwani distributed merge. Counts add; each side's
    /// `delta` (its maximum missed mass) adds too, with an absent side
    /// contributing its `window − 1` bound. The merged window id is the sum
    /// of both sides' (so every new delta stays a past window id), followed
    /// by one standard prune. Estimates keep underestimating and
    /// `count + delta` stays a sound upper bound on the combined frequency.
    pub fn absorb_parts(&mut self, entries: Vec<(I, u64, u64)>, window: u64, stream_len: u64) {
        let donor_absent = window.saturating_sub(1);
        let self_absent = self.window - 1;
        let mut seen = crate::fasthash::FxHashMap::default();
        for (item, count, delta) in entries {
            if count == 0 {
                continue;
            }
            seen.insert(item.clone(), ());
            match self.table.get_mut(&item) {
                Some((c, d)) => {
                    *c += count;
                    *d += delta;
                }
                None => {
                    self.table.insert(item, (count, delta + self_absent));
                }
            }
        }
        for (item, (_, d)) in self.table.iter_mut() {
            if !seen.contains_key(item) {
                *d += donor_absent;
            }
        }
        self.stream_len += stream_len;
        self.window += donor_absent;
        // Organic pruning drops entries with `c + d ≤ b` *before* advancing
        // to window `b + 1`, which is what keeps the `window − 1` upper
        // bound sound for pruned items; mirror that by pruning at the
        // pre-advance boundary `window − 1` rather than at `window`.
        let boundary = self.window - 1;
        self.table.retain(|_, &mut (c, d)| c + d > boundary);
        self.max_table = self.max_table.max(self.table.len());
    }

    fn prune(&mut self) {
        let window = self.window;
        self.table
            .retain(|_, &mut (count, delta)| count + delta > window);
    }

    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert!(self.table.len() <= self.max_table);
        for (&(count, delta), _) in self.table.values().zip(0..) {
            assert!(count >= 1);
            assert!(delta < self.window, "delta is a past window id");
        }
    }
}

impl<I: Eq + Hash + Clone> FrequencyEstimator<I> for LossyCounting<I> {
    fn name(&self) -> &'static str {
        "LossyCounting"
    }

    /// LOSSYCOUNTING has no fixed counter budget; by convention we report
    /// the high-water table size (so space comparisons in experiments use
    /// the space it actually consumed).
    fn capacity(&self) -> usize {
        self.max_table
    }

    fn update_by(&mut self, item: I, count: u64) {
        // Window boundaries fall between unit arrivals, so bulk updates are
        // processed as repeated unit updates (O(count)); LOSSYCOUNTING is a
        // comparator, not a merge target, so this path is never hot.
        for _ in 0..count {
            self.update(item.clone());
        }
    }

    fn update(&mut self, item: I) {
        self.stream_len += 1;
        match self.table.get_mut(&item) {
            Some((count, _)) => *count += 1,
            None => {
                self.table.insert(item, (1, self.window - 1));
            }
        }
        self.max_table = self.max_table.max(self.table.len());
        if self.stream_len.is_multiple_of(self.width) {
            self.prune();
            self.window += 1;
        }
    }

    fn estimate(&self, item: &I) -> u64 {
        self.table.get(item).map(|&(c, _)| c).unwrap_or(0)
    }

    fn stored_len(&self) -> usize {
        self.table.len()
    }

    fn entries(&self) -> Vec<(I, u64)> {
        let mut v: Vec<(I, u64)> = self
            .table
            .iter()
            .map(|(i, &(c, _))| (i.clone(), c))
            .collect();
        v.sort_unstable_by_key(|e| std::cmp::Reverse(e.1));
        v
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::Under
    }

    /// Manku–Motwani upper bound: `count + delta` for stored items (delta
    /// is the maximum number of missed occurrences), `window − 1` for
    /// unstored ones (an item pruned in window `b` had `f_i ≤ b` and has
    /// not been seen since).
    fn upper_estimate(&self, item: &I) -> u64 {
        match self.table.get(item) {
            Some(&(count, delta)) => count + delta,
            None => self.window - 1,
        }
    }

    /// LOSSYCOUNTING has an `εF1` guarantee but no residual tail guarantee
    /// (Table 1); `None` here is what excludes it from the tail experiments.
    fn tail_constants(&self) -> Option<TailConstants> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(eps: f64, stream: &[u64]) -> LossyCounting<u64> {
        let mut lc = LossyCounting::new(eps);
        for &x in stream {
            lc.update(x);
        }
        lc
    }

    #[test]
    fn exact_when_epsilon_large_window() {
        // width >= stream length: nothing is ever pruned
        let stream = [1u64, 2, 1, 3, 1];
        let mut lc = LossyCounting::with_width(100);
        for &x in &stream {
            lc.update(x);
        }
        assert_eq!(lc.estimate(&1), 3);
        assert_eq!(lc.estimate(&2), 1);
        assert_eq!(lc.estimate(&3), 1);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // >=10k-op loop: too slow interpreted
    fn error_within_epsilon_n() {
        let stream: Vec<u64> = (0..10_000).map(|i| (i % 97) + 1).collect();
        let eps = 0.01;
        let lc = run(eps, &stream);
        let n = stream.len() as u64;
        let exact = |i: u64| stream.iter().filter(|&&x| x == i).count() as u64;
        for i in 1..=97u64 {
            let e = lc.estimate(&i);
            assert!(e <= exact(i), "underestimates");
            assert!(
                exact(i) - e <= (eps * n as f64).ceil() as u64,
                "item {i}: {e} vs {}",
                exact(i)
            );
        }
    }

    #[test]
    fn prunes_infrequent_items() {
        // 1000 distinct singletons with eps=0.1 (w=10): table stays small
        let stream: Vec<u64> = (0..1000).collect();
        let lc = run(0.1, &stream);
        assert!(lc.stored_len() <= 10 + 1, "got {}", lc.stored_len());
    }

    #[test]
    fn max_table_tracks_high_water() {
        let stream: Vec<u64> = (0..100).collect();
        let lc = run(0.5, &stream); // w = 2
        assert!(lc.max_table_len() >= lc.stored_len());
        assert!(lc.max_table_len() <= 3);
    }

    #[test]
    fn update_by_matches_unit_updates() {
        let mut a = LossyCounting::new(0.25);
        let mut b = LossyCounting::new(0.25);
        for (item, c) in [(1u64, 3u64), (2, 2), (1, 1), (3, 5)] {
            a.update_by(item, c);
            for _ in 0..c {
                b.update(item);
            }
        }
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.stream_len(), b.stream_len());
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = LossyCounting::<u64>::new(0.0);
    }
}
