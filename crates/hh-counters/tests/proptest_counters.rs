//! Property-based tests over the counter algorithms: conformance to the
//! pseudocode references, the paper's guarantees, data-structure
//! invariants, and bulk-update equivalence — all on randomized streams.

use proptest::collection::vec;
use proptest::prelude::*;

use hh_counters::{
    Bias, FrequencyEstimator, Frequent, FrequentR, HeapSpaceSaving, ReferenceFrequent,
    ReferenceSpaceSaving, SpaceSaving, SpaceSavingR, StreamSummary, WeightedFrequencyEstimator,
};

/// A random stream: items in 1..=sigma, length up to `len`.
fn stream_strategy(sigma: u64, len: usize) -> impl Strategy<Value = Vec<u64>> {
    vec(1..=sigma, 0..len)
}

fn exact(stream: &[u64], item: u64) -> u64 {
    stream.iter().filter(|&&x| x == item).count() as u64
}

fn sorted_freqs(stream: &[u64], sigma: u64) -> Vec<u64> {
    let mut f: Vec<u64> = (1..=sigma).map(|i| exact(stream, i)).collect();
    f.sort_unstable_by(|a, b| b.cmp(a));
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frequent_conforms_to_reference(stream in stream_strategy(8, 80), m in 1usize..6) {
        let mut fast = Frequent::new(m);
        let mut slow = ReferenceFrequent::new(m);
        for &x in &stream {
            fast.update(x);
            slow.update(x);
        }
        let mut fs = fast.entries();
        fs.sort_unstable();
        prop_assert_eq!(fs, slow.state());
        prop_assert_eq!(fast.decrements(), slow.decrements());
    }

    #[test]
    fn spacesaving_conforms_to_reference(stream in stream_strategy(8, 80), m in 1usize..6) {
        let mut fast = SpaceSaving::new(m);
        let mut slow = ReferenceSpaceSaving::new(m);
        for &x in &stream {
            fast.update(x);
            slow.update(x);
        }
        let mut fs = fast.entries();
        fs.sort_unstable();
        prop_assert_eq!(fs, slow.state());
    }

    #[test]
    fn tail_guarantee_one_one(stream in stream_strategy(12, 200), m in 2usize..10) {
        let mut fr = Frequent::new(m);
        let mut ss = SpaceSaving::new(m);
        for &x in &stream {
            fr.update(x);
            ss.update(x);
        }
        let sorted = sorted_freqs(&stream, 12);
        for k in 0..m {
            let res: u64 = sorted.iter().skip(k).sum();
            if m <= k { continue; }
            let bound = res / (m - k) as u64;
            for item in 1..=12u64 {
                let f = exact(&stream, item);
                prop_assert!(f.abs_diff(fr.estimate(&item)) <= bound,
                    "Frequent k={} item={}", k, item);
                prop_assert!(f.abs_diff(ss.estimate(&item)) <= bound,
                    "SpaceSaving k={} item={}", k, item);
            }
        }
    }

    #[test]
    fn frequent_is_an_underestimate_within_d(stream in stream_strategy(10, 150), m in 1usize..8) {
        let mut fr = Frequent::new(m);
        for &x in &stream {
            fr.update(x);
        }
        prop_assert_eq!(fr.bias(), Bias::Under);
        let d = fr.decrements();
        for item in 1..=10u64 {
            let f = exact(&stream, item);
            let c = fr.estimate(&item);
            prop_assert!(c <= f);
            prop_assert!(c + d >= f);
        }
    }

    #[test]
    fn spacesaving_sandwich(stream in stream_strategy(10, 150), m in 1usize..8) {
        let mut ss = SpaceSaving::new(m);
        for &x in &stream {
            ss.update(x);
        }
        // counter sum == stream length
        let sum: u64 = ss.entries().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(sum, stream.len() as u64);
        for item in 1..=10u64 {
            let f = exact(&stream, item);
            prop_assert!(ss.guaranteed_count(&item) <= f);
            prop_assert!(ss.upper_estimate(&item) >= f);
            let c = ss.estimate(&item);
            if c > 0 {
                prop_assert!(c >= f, "stored estimates dominate");
            }
        }
    }

    #[test]
    fn bulk_updates_equal_unit_updates(
        updates in vec((1u64..8, 1u64..12), 0..40),
        m in 1usize..6
    ) {
        let mut fr_bulk = Frequent::new(m);
        let mut fr_unit = Frequent::new(m);
        let mut ss_bulk = SpaceSaving::new(m);
        let mut ss_unit = SpaceSaving::new(m);
        for &(item, c) in &updates {
            fr_bulk.update_by(item, c);
            ss_bulk.update_by(item, c);
            for _ in 0..c {
                fr_unit.update(item);
                ss_unit.update(item);
            }
        }
        let mut a = fr_bulk.entries(); a.sort_unstable();
        let mut b = fr_unit.entries(); b.sort_unstable();
        prop_assert_eq!(a, b, "Frequent bulk == unit");
        let mut c1 = ss_bulk.entries(); c1.sort_unstable();
        let mut c2 = ss_unit.entries(); c2.sort_unstable();
        prop_assert_eq!(c1, c2, "SpaceSaving bulk == unit");
    }

    #[test]
    fn batch_updates_equal_unit_updates(stream in stream_strategy(8, 120), m in 1usize..6) {
        let mut fr_batch = Frequent::new(m);
        let mut fr_unit = Frequent::new(m);
        let mut ss_batch = SpaceSaving::new(m);
        let mut ss_unit = SpaceSaving::new(m);
        fr_batch.update_batch(&stream);
        ss_batch.update_batch(&stream);
        for &x in &stream {
            fr_unit.update(x);
            ss_unit.update(x);
        }
        fr_batch.check_invariants();
        ss_batch.check_invariants();
        prop_assert_eq!(fr_batch.entries(), fr_unit.entries(), "Frequent batch == unit");
        prop_assert_eq!(fr_batch.decrements(), fr_unit.decrements());
        prop_assert_eq!(ss_batch.entries(), ss_unit.entries(), "SpaceSaving batch == unit");
        prop_assert_eq!(ss_batch.stream_len(), ss_unit.stream_len());
    }

    #[test]
    fn heap_and_bucket_spacesaving_agree_on_counter_multiset(
        stream in stream_strategy(10, 150),
        m in 1usize..8
    ) {
        let mut bucket = SpaceSaving::new(m);
        let mut heap = HeapSpaceSaving::new(m);
        for &x in &stream {
            bucket.update(x);
            heap.update(x);
        }
        // States may differ on ties, but the counter-value multiset is
        // determined by the replace-min discipline.
        let mut bc: Vec<u64> = bucket.entries().iter().map(|&(_, c)| c).collect();
        let mut hc: Vec<u64> = heap.entries().iter().map(|&(_, c)| c).collect();
        bc.sort_unstable();
        hc.sort_unstable();
        prop_assert_eq!(bc, hc);
    }

    #[test]
    fn stream_summary_invariants_under_random_ops(
        ops in vec((0u8..4, 1u64..12, 1u64..5), 0..120)
    ) {
        let mut s: StreamSummary<u64> = StreamSummary::new();
        for &(op, item, amt) in &ops {
            match op {
                0 => {
                    if !s.contains(&item) {
                        s.insert(item, amt, 0);
                    }
                }
                1 => {
                    s.increment(&item, amt);
                }
                2 => {
                    s.evict_min();
                }
                _ => {
                    s.remove(&item);
                }
            }
            s.check_invariants();
        }
    }

    #[test]
    fn weighted_unit_equivalence(stream in stream_strategy(8, 100), m in 1usize..6) {
        let mut ss = SpaceSaving::new(m);
        let mut ssr = SpaceSavingR::new(m);
        for &x in &stream {
            ss.update(x);
            ssr.update_weighted(x, 1.0);
        }
        let mut a: Vec<u64> = ss.entries().iter().map(|&(_, c)| c).collect();
        let mut b: Vec<u64> = ssr.entries_weighted().iter()
            .map(|&(_, w)| w.round() as u64).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn weighted_heavy_hitter_guarantee(
        updates in vec((1u64..10, 1u32..1000), 1..80),
        m in 1usize..8
    ) {
        // weights as fractional values: w = raw / 16
        let mut frr = FrequentR::new(m);
        let mut ssr = SpaceSavingR::new(m);
        let mut f1 = 0.0f64;
        let mut exact_w = std::collections::HashMap::new();
        for &(item, raw) in &updates {
            let w = raw as f64 / 16.0;
            frr.update_weighted(item, w);
            ssr.update_weighted(item, w);
            *exact_w.entry(item).or_insert(0.0) += w;
            f1 += w;
        }
        let bound = f1 / m as f64 + 1e-6 * f1.max(1.0);
        for (&item, &w) in &exact_w {
            prop_assert!((w - frr.estimate_weighted(&item)).abs() <= bound,
                "FrequentR item {}", item);
            prop_assert!((w - ssr.estimate_weighted(&item)).abs() <= bound,
                "SpaceSavingR item {}", item);
        }
    }

    #[test]
    fn estimates_zero_for_never_seen_items(stream in stream_strategy(5, 60), m in 1usize..5) {
        let mut fr = Frequent::new(m);
        let mut ss = SpaceSaving::new(m);
        for &x in &stream {
            fr.update(x);
            ss.update(x);
        }
        for item in 100..105u64 {
            prop_assert_eq!(fr.estimate(&item), 0);
            prop_assert_eq!(ss.estimate(&item), 0);
        }
    }
}

// ---- properties of the newer modules ---------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn snapshot_roundtrip_is_lossless(stream in stream_strategy(10, 120), m in 1usize..8) {
        let mut ss = SpaceSaving::new(m);
        let mut fr = Frequent::new(m);
        for &x in &stream {
            ss.update(x);
            fr.update(x);
        }
        let ss2 = SpaceSaving::from_parts(m, ss.stream_len(), ss.absorbed_slack(), ss.entries_with_err())
            .expect("captured parts are consistent");
        let fr2 = Frequent::from_parts(m, fr.stream_len(), fr.decrements(), fr.entries())
            .expect("captured parts are consistent");
        prop_assert_eq!(ss2.entries_with_err(), ss.entries_with_err());
        prop_assert_eq!(fr2.entries(), fr.entries());
        prop_assert_eq!(fr2.decrements(), fr.decrements());
        // continuing both with the same suffix keeps them identical
        let mut ss_cont = ss.clone();
        let mut ss2_cont = ss2;
        for x in 1..=5u64 {
            ss_cont.update(x);
            ss2_cont.update(x);
        }
        prop_assert_eq!(ss_cont.entries_with_err(), ss2_cont.entries_with_err());
    }

    #[test]
    fn guaranteed_heavy_hitters_are_sound(stream in stream_strategy(10, 150), m in 2usize..10) {
        use hh_counters::{spacesaving_heavy_hitters, frequent_heavy_hitters, Confidence};
        let mut ss = SpaceSaving::new(m);
        let mut fr = Frequent::new(m);
        for &x in &stream {
            ss.update(x);
            fr.update(x);
        }
        let phi = 0.2;
        let n = stream.len() as f64;
        for hit in spacesaving_heavy_hitters(&ss, phi) {
            if hit.confidence == Confidence::Guaranteed {
                prop_assert!(exact(&stream, hit.item) as f64 > phi * n,
                    "SS guaranteed item {} not heavy", hit.item);
            }
        }
        for hit in frequent_heavy_hitters(&fr, phi) {
            if hit.confidence == Confidence::Guaranteed {
                prop_assert!(exact(&stream, hit.item) as f64 > phi * n,
                    "FR guaranteed item {} not heavy", hit.item);
            }
        }
    }

    #[test]
    fn monitor_members_always_match_topk(stream in stream_strategy(8, 150), k in 1usize..4) {
        use hh_counters::monitor::TopKMonitor;
        use hh_counters::topk::top_k;
        let m = k + 4;
        let mut mon: TopKMonitor<u64> = TopKMonitor::new(m, k);
        for &x in &stream {
            mon.update(x);
            let expect: std::collections::BTreeSet<u64> =
                top_k(mon.summary(), k).into_iter().map(|(i, _)| i).collect();
            prop_assert_eq!(mon.members(), &expect);
        }
    }

    #[test]
    fn parallel_summarize_equals_sequential_merge(
        stream in stream_strategy(12, 200),
        parts in 1usize..5
    ) {
        use hh_counters::merge::merge_k_sparse;
        use hh_counters::parallel::parallel_summarize;
        let m = 16;
        let k = 4;
        let chunk = stream.len() / parts + 1;
        let chunks: Vec<Vec<u64>> = stream.chunks(chunk.max(1)).map(|c| c.to_vec()).collect();
        let par = parallel_summarize(&chunks, k, || SpaceSaving::new(m), || SpaceSaving::new(m));
        let seq_summaries: Vec<SpaceSaving<u64>> = chunks
            .iter()
            .map(|c| {
                let mut s = SpaceSaving::new(m);
                for &x in c {
                    s.update(x);
                }
                s
            })
            .collect();
        let seq = merge_k_sparse(&seq_summaries, k, || SpaceSaving::new(m));
        prop_assert_eq!(par.entries(), seq.entries());
    }

    #[test]
    fn sticky_sampling_never_overestimates(
        stream in stream_strategy(15, 250),
        seed in 1u64..500
    ) {
        use hh_counters::StickySampling;
        let mut s: StickySampling<u64> = StickySampling::new(0.1, 0.1, 0.1, seed);
        for &x in &stream {
            s.update(x);
        }
        for item in 1..=15u64 {
            prop_assert!(s.estimate(&item) <= exact(&stream, item));
        }
        prop_assert_eq!(s.stream_len(), stream.len() as u64);
    }
}
