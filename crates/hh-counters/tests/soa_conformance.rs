//! State conformance of the SoA `StreamSummary`-backed algorithms against
//! the Figure 1 reference executors, at the capacities the PR 4 layout
//! overhaul targets: tiny (m = 2, maximal eviction pressure), medium
//! (m = 64) and the cache-cliff size (m = 16384, where the open-addressing
//! index and the split arenas actually matter).
//!
//! The references are O(m) per eviction, so the m = 16384 case fills the
//! table once, runs a long increment-heavy phase, and bounds the number of
//! reference-side eviction scans; states are compared exactly at the end
//! (the smaller capacities compare after every prefix).

use hh_counters::{
    FrequencyEstimator, Frequent, ReferenceFrequent, ReferenceSpaceSaving, SpaceSaving,
};

/// Deterministic pseudo-random stream over `universe` items.
fn stream(len: usize, universe: u64, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) % universe + 1
        })
        .collect()
}

fn spacesaving_conformance_per_prefix(m: usize, s: &[u64]) {
    let mut fast = SpaceSaving::new(m);
    let mut slow = ReferenceSpaceSaving::new(m);
    for &x in s {
        fast.update(x);
        slow.update(x);
        let mut fs: Vec<(u64, u64)> = fast.entries();
        fs.sort_unstable();
        assert_eq!(fs, slow.state(), "m={m} after prefix ending in {x}");
    }
    fast.check_invariants();
}

fn frequent_conformance_per_prefix(m: usize, s: &[u64]) {
    let mut fast = Frequent::new(m);
    let mut slow = ReferenceFrequent::new(m);
    for &x in s {
        fast.update(x);
        slow.update(x);
        let mut fs = fast.entries();
        fs.sort_unstable();
        assert_eq!(fs, slow.state(), "m={m} after prefix ending in {x}");
    }
    assert_eq!(fast.decrements(), slow.decrements());
    fast.check_invariants();
}

#[test]
fn spacesaving_soa_conformance_m2() {
    spacesaving_conformance_per_prefix(2, &stream(600, 9, 7));
}

#[test]
fn frequent_soa_conformance_m2() {
    frequent_conformance_per_prefix(2, &stream(600, 9, 11));
}

#[test]
fn spacesaving_soa_conformance_m64() {
    spacesaving_conformance_per_prefix(64, &stream(3000, 200, 13));
}

#[test]
fn frequent_soa_conformance_m64() {
    frequent_conformance_per_prefix(64, &stream(3000, 200, 17));
}

/// m = 16384: fill past capacity, hammer the stored items with increments
/// (the workload the SoA layout optimizes), sprinkle a bounded number of
/// evicting arrivals, then compare the full final state exactly.
#[test]
fn spacesaving_soa_conformance_m16384() {
    let m = 16384usize;
    let mut fast = SpaceSaving::new(m);
    let mut slow = ReferenceSpaceSaving::new(m);
    let feed = |fast: &mut SpaceSaving<u64>, slow: &mut ReferenceSpaceSaving<u64>, x: u64| {
        fast.update(x);
        slow.update(x);
    };
    // fill phase: m distinct items (no evictions yet)
    for i in 0..m as u64 {
        feed(&mut fast, &mut slow, i + 1);
    }
    // increment-heavy phase over stored items
    for &x in &stream(60_000, m as u64, 23) {
        feed(&mut fast, &mut slow, x);
    }
    // bounded eviction phase: 200 unseen items (each costs the reference an
    // O(m) scan — keep it small) interleaved with more increments
    for (i, &x) in stream(2_000, m as u64, 29).iter().enumerate() {
        if i % 10 == 0 {
            feed(&mut fast, &mut slow, 1_000_000 + i as u64);
        }
        feed(&mut fast, &mut slow, x);
    }
    fast.check_invariants();
    let mut fs: Vec<(u64, u64)> = fast.entries();
    fs.sort_unstable();
    assert_eq!(fs, slow.state(), "m=16384 final state");
}

#[test]
fn frequent_soa_conformance_m16384() {
    let m = 16384usize;
    let mut fast = Frequent::new(m);
    let mut slow = ReferenceFrequent::new(m);
    let feed = |fast: &mut Frequent<u64>, slow: &mut ReferenceFrequent<u64>, x: u64| {
        fast.update(x);
        slow.update(x);
    };
    for i in 0..m as u64 {
        feed(&mut fast, &mut slow, i + 1);
    }
    for &x in &stream(60_000, m as u64, 31) {
        feed(&mut fast, &mut slow, x);
    }
    // decrement rounds: each unseen arrival on a full table decrements all
    // m reference counters — keep the count bounded
    for (i, &x) in stream(2_000, m as u64, 37).iter().enumerate() {
        if i % 20 == 0 {
            feed(&mut fast, &mut slow, 1_000_000 + i as u64);
        }
        feed(&mut fast, &mut slow, x);
    }
    fast.check_invariants();
    assert_eq!(fast.decrements(), slow.decrements());
    let mut fs = fast.entries();
    fs.sort_unstable();
    assert_eq!(fs, slow.state(), "m=16384 final state");
}
