//! `hh-fault` — deterministic, seeded fault injection for crash-safety
//! tests, plus the shared retry/backoff policy the client uses.
//!
//! Production code hosts **named injection sites** (the catalog lives in
//! [`sites`]): a call like `hh_fault::fault_point(sites::SHARD_BATCH)`
//! does nothing unless a [`FaultPlan`] is installed. Plans are seeded and
//! hit-counted, so a chaos test replays the *same* failure schedule on
//! every run: "panic on the 3rd batch shard 2 ingests" is a plan entry,
//! not a race.
//!
//! Two compilation modes keep the production hot path honest:
//!
//! * **feature `active` off (default)** — every hook is an empty
//!   `#[inline(always)]` function; the optimizer erases the call and the
//!   pipeline/server hot paths are bit-identical to a hook-free build
//!   (the `BENCH_fault_overhead.json` sentinel gates this).
//! * **feature `active` on** — hooks consult the installed plan: a
//!   relaxed-atomic fast path when no plan is installed, a shared-lock
//!   lookup when one is.
//!
//! Five fault kinds cover the crash-safety surface: [`FaultKind::Panic`]
//! (kill a shard worker), [`FaultKind::Stall`] (wedge a channel so
//! backpressure/overload paths engage), [`FaultKind::ShortRead`] /
//! [`FaultKind::Eintr`] (exercise partial-I/O retry loops), and
//! [`FaultKind::TornWrite`] (truncate a checkpoint payload so CRC
//! validation and generation fallback are reachable in tests).
//!
//! Plans parse from a compact spec (see [`FaultPlan::parse`]) so the CI
//! chaos smoke can drive a release binary through the environment:
//!
//! ```
//! use hh_fault::{FaultKind, FaultPlan, Trigger};
//! let plan = FaultPlan::parse("seed=7; panic@pipeline::shard::batch#3; eintr@net::read%0.25").unwrap();
//! assert_eq!(plan.seed(), 7);
//! assert_eq!(plan.rules()[0].kind, FaultKind::Panic);
//! assert_eq!(plan.rules()[0].trigger, Trigger::OnHit(3));
//! ```
#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

/// The environment variable [`install_from_env`] reads a plan spec from.
pub const ENV_PLAN: &str = "HH_FAULT_PLAN";

/// The catalog of named injection sites compiled into the workspace.
/// Documented (with the failure each one models) in
/// `docs/RELIABILITY.md`.
pub mod sites {
    /// Shard worker, before ingesting a delivered batch. `panic` models a
    /// worker crash mid-stream; `stall` models a wedged shard (queues
    /// fill, `saturated()` engages, the server sheds load).
    pub const SHARD_BATCH: &str = "pipeline::shard::batch";
    /// Shard worker, before answering an epoch checkpoint marker.
    pub const SHARD_CHECKPOINT: &str = "pipeline::shard::checkpoint";
    /// Server event loop, before a connection read. `eintr` and
    /// `shortread` exercise the partial-read retry path.
    pub const NET_READ: &str = "net::read";
    /// Server event loop, before flushing a connection's write buffer.
    pub const NET_WRITE: &str = "net::write";
    /// Server accept path.
    pub const NET_ACCEPT: &str = "net::accept";
    /// Durable checkpoint writer. `tornwrite` truncates the payload that
    /// reaches disk, modeling a crash mid-write: the CRC header must
    /// reject the file and resume must fall back a generation.
    pub const CHECKPOINT_WRITE: &str = "checkpoint::write";
}

/// What an armed rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Panic at the site (`fault_point`).
    Panic,
    /// Sleep `ms` milliseconds at the site (`fault_point`).
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Halve the byte count a read reports (`short_read`).
    ShortRead,
    /// Report a spurious `EINTR` (`eintr`).
    Eintr,
    /// Halve the byte count a write persists (`torn_write`).
    TornWrite,
}

impl FaultKind {
    /// True for the kinds [`fault_point`] executes (panic / stall).
    #[cfg_attr(not(feature = "active"), allow(dead_code))]
    fn is_exec(&self) -> bool {
        matches!(self, FaultKind::Panic | FaultKind::Stall { .. })
    }
}

/// When an armed rule fires, relative to its per-rule hit counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire exactly once, on the `n`-th hit (1-based).
    OnHit(u64),
    /// Fire independently per hit with this probability, derived
    /// deterministically from the plan seed, the site name and the hit
    /// number — same seed, same schedule.
    Probability(f64),
}

/// One `(site, kind, trigger)` entry of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The injection site the rule arms (exact match, see [`sites`]).
    pub site: String,
    /// The fault to inject.
    pub kind: FaultKind,
    /// When to inject it.
    pub trigger: Trigger,
}

/// A deterministic failure schedule: a seed plus a list of [`Rule`]s.
///
/// Build one programmatically ([`FaultPlan::new`] + the `*_on` /
/// `*_prob` helpers) or parse the compact spec format
/// ([`FaultPlan::parse`]), then arm it with [`install`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// An empty plan with the given seed (used by `%p` probability
    /// triggers; irrelevant for pure `#n` hit triggers).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The armed rules, in declaration order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Adds an arbitrary rule.
    pub fn rule(mut self, site: &str, kind: FaultKind, trigger: Trigger) -> Self {
        self.rules.push(Rule {
            site: site.to_string(),
            kind,
            trigger,
        });
        self
    }

    /// Panic on the `n`-th hit of `site`.
    pub fn panic_on(self, site: &str, n: u64) -> Self {
        self.rule(site, FaultKind::Panic, Trigger::OnHit(n))
    }

    /// Stall `ms` milliseconds on the `n`-th hit of `site`.
    pub fn stall_on(self, site: &str, n: u64, ms: u64) -> Self {
        self.rule(site, FaultKind::Stall { ms }, Trigger::OnHit(n))
    }

    /// Report a short read on the `n`-th hit of `site`.
    pub fn short_read_on(self, site: &str, n: u64) -> Self {
        self.rule(site, FaultKind::ShortRead, Trigger::OnHit(n))
    }

    /// Report a spurious `EINTR` on the `n`-th hit of `site`.
    pub fn eintr_on(self, site: &str, n: u64) -> Self {
        self.rule(site, FaultKind::Eintr, Trigger::OnHit(n))
    }

    /// Tear (truncate) the write on the `n`-th hit of `site`.
    pub fn torn_write_on(self, site: &str, n: u64) -> Self {
        self.rule(site, FaultKind::TornWrite, Trigger::OnHit(n))
    }

    /// Arm `kind` at `site` with independent per-hit probability `p`.
    pub fn prob(self, site: &str, kind: FaultKind, p: f64) -> Self {
        self.rule(site, kind, Trigger::Probability(p))
    }

    /// Parses the compact spec format used by [`ENV_PLAN`]:
    /// semicolon-separated entries, each either `seed=<u64>` or
    /// `<kind>@<site><trigger>` where `<kind>` is one of `panic`,
    /// `stall(<ms>)`, `shortread`, `eintr`, `tornwrite` and `<trigger>`
    /// is `#<n>` (fire once on the n-th hit) or `%<p>` (per-hit
    /// probability).
    ///
    /// ```
    /// let plan = hh_fault::FaultPlan::parse("stall(50)@net::read#2").unwrap();
    /// assert_eq!(plan.rules().len(), 1);
    /// assert!(hh_fault::FaultPlan::parse("explode@x#1").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed in {entry:?}"))?;
                continue;
            }
            let (kind, rest) = entry
                .split_once('@')
                .ok_or_else(|| format!("missing '@' in fault entry {entry:?}"))?;
            let kind = match kind.trim() {
                "panic" => FaultKind::Panic,
                "shortread" => FaultKind::ShortRead,
                "eintr" => FaultKind::Eintr,
                "tornwrite" => FaultKind::TornWrite,
                s => {
                    let ms = s
                        .strip_prefix("stall(")
                        .and_then(|t| t.strip_suffix(')'))
                        .and_then(|t| t.trim().parse().ok())
                        .ok_or_else(|| format!("unknown fault kind in {entry:?}"))?;
                    FaultKind::Stall { ms }
                }
            };
            let (site, trigger) = if let Some((site, n)) = rest.rsplit_once('#') {
                let n = n
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("bad hit count in {entry:?}"))?;
                if n == 0 {
                    return Err(format!("hit counts are 1-based: {entry:?}"));
                }
                (site, Trigger::OnHit(n))
            } else if let Some((site, p)) = rest.rsplit_once('%') {
                let p = p
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("bad probability in {entry:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability outside [0, 1]: {entry:?}"));
                }
                (site, Trigger::Probability(p))
            } else {
                return Err(format!("missing '#<n>' or '%<p>' trigger in {entry:?}"));
            };
            let site = site.trim();
            if site.is_empty() {
                return Err(format!("empty site in {entry:?}"));
            }
            plan = plan.rule(site, kind, trigger);
        }
        Ok(plan)
    }
}

// ---------------------------------------------------------------------------
// The armed-plan machinery (feature `active`)
// ---------------------------------------------------------------------------

#[cfg(feature = "active")]
mod armed {
    use super::{FaultKind, FaultPlan, Trigger};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    struct ArmedRule {
        site: String,
        kind: FaultKind,
        trigger: Trigger,
        hits: AtomicU64,
    }

    struct Armed {
        seed: u64,
        rules: Vec<ArmedRule>,
    }

    /// Fast-path flag: hooks return immediately while no plan is armed.
    /// Relaxed is enough — installers arm the plan before starting the
    /// threads that hit the sites, and a stale `false` only delays the
    /// first injection by one lock-free read.
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    fn slot() -> &'static Mutex<Option<Arc<Armed>>> {
        static SLOT: OnceLock<Mutex<Option<Arc<Armed>>>> = OnceLock::new();
        SLOT.get_or_init(|| Mutex::new(None))
    }

    pub fn install(plan: FaultPlan) {
        let armed = Armed {
            seed: plan.seed,
            rules: plan
                .rules
                .into_iter()
                .map(|r| ArmedRule {
                    site: r.site,
                    kind: r.kind,
                    trigger: r.trigger,
                    hits: AtomicU64::new(0),
                })
                .collect(),
        };
        let mut slot = slot().lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(Arc::new(armed));
        INSTALLED.store(true, Ordering::Relaxed);
    }

    pub fn clear() {
        let mut slot = slot().lock().unwrap_or_else(|e| e.into_inner());
        INSTALLED.store(false, Ordering::Relaxed);
        *slot = None;
    }

    /// The first matching armed rule that fires at `site`, filtered by
    /// hook kind. Each *matching* rule's hit counter advances exactly
    /// once per call, so schedules are deterministic per (site, hook).
    pub fn fire(site: &str, wants: fn(&FaultKind) -> bool) -> Option<FaultKind> {
        if !INSTALLED.load(Ordering::Relaxed) {
            return None;
        }
        let armed = slot().lock().unwrap_or_else(|e| e.into_inner()).clone()?;
        let mut fired = None;
        for rule in &armed.rules {
            if rule.site != site || !wants(&rule.kind) {
                continue;
            }
            let hit = rule.hits.fetch_add(1, Ordering::Relaxed) + 1;
            let fires = match rule.trigger {
                Trigger::OnHit(n) => hit == n,
                Trigger::Probability(p) => super::chance(armed.seed, site, hit) < p,
            };
            if fires && fired.is_none() {
                fired = Some(rule.kind);
            }
        }
        fired
    }
}

/// Arms `plan` process-wide; later hooks consult it. With the `active`
/// feature off this is a no-op.
#[cfg(feature = "active")]
pub fn install(plan: FaultPlan) {
    armed::install(plan);
}

/// Arms `plan` process-wide; later hooks consult it. With the `active`
/// feature off this is a no-op.
#[cfg(not(feature = "active"))]
#[inline(always)]
pub fn install(_plan: FaultPlan) {}

/// Disarms any installed plan. No-op when `active` is off.
#[cfg(feature = "active")]
pub fn clear() {
    armed::clear();
}

/// Disarms any installed plan. No-op when `active` is off.
#[cfg(not(feature = "active"))]
#[inline(always)]
pub fn clear() {}

/// Whether this build compiled the injection machinery in.
pub fn is_active() -> bool {
    cfg!(feature = "active")
}

/// Installs a plan from the [`ENV_PLAN`] environment variable. Returns
/// `Ok(true)` when a plan was parsed and armed, `Ok(false)` when the
/// variable is unset, and `Err` on a malformed spec — or, loudly, when a
/// spec is present but this binary was built without `active` (a silent
/// no-op there would make a chaos run vacuously green).
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var(ENV_PLAN) {
        Err(_) => Ok(false),
        Ok(spec) => {
            if !is_active() {
                return Err(format!(
                    "{ENV_PLAN} is set but this binary was built without the \
                     hh-fault `active` feature"
                ));
            }
            install(FaultPlan::parse(&spec)?);
            Ok(true)
        }
    }
}

/// Execution hook: panics or stalls if an armed `panic`/`stall(ms)` rule
/// fires at `site`; otherwise free. Place on paths whose crash/wedge
/// behavior is under test.
#[cfg(feature = "active")]
pub fn fault_point(site: &str) {
    match armed::fire(site, FaultKind::is_exec) {
        Some(FaultKind::Panic) => {
            // lint:allow(panic-freedom) precondition: callers arm this injection site on purpose — panicking here is the hook's contract
            panic!("hh-fault: injected panic at {site}")
        }
        Some(FaultKind::Stall { ms }) => std::thread::sleep(Duration::from_millis(ms)),
        _ => {}
    }
}

/// Execution hook: panics or stalls if an armed `panic`/`stall(ms)` rule
/// fires at `site`; otherwise free. Place on paths whose crash/wedge
/// behavior is under test.
#[cfg(not(feature = "active"))]
#[inline(always)]
pub fn fault_point(_site: &str) {}

/// I/O hook: the byte count a read at `site` should report — `len`
/// normally, roughly half when an armed `shortread` rule fires (never
/// rounded to zero, so a short read stays distinguishable from EOF).
#[cfg(feature = "active")]
pub fn short_read(site: &str, len: usize) -> usize {
    match armed::fire(site, |k| matches!(k, FaultKind::ShortRead)) {
        Some(_) if len > 1 => len / 2,
        _ => len,
    }
}

/// I/O hook: the byte count a read at `site` should report — `len`
/// normally, roughly half when an armed `shortread` rule fires (never
/// rounded to zero, so a short read stays distinguishable from EOF).
#[cfg(not(feature = "active"))]
#[inline(always)]
pub fn short_read(_site: &str, len: usize) -> usize {
    len
}

/// I/O hook: true when an armed `eintr` rule fires at `site` — the
/// caller should behave as if the syscall returned `EINTR` and retry.
#[cfg(feature = "active")]
pub fn eintr(site: &str) -> bool {
    armed::fire(site, |k| matches!(k, FaultKind::Eintr)).is_some()
}

/// I/O hook: true when an armed `eintr` rule fires at `site` — the
/// caller should behave as if the syscall returned `EINTR` and retry.
#[cfg(not(feature = "active"))]
#[inline(always)]
pub fn eintr(_site: &str) -> bool {
    false
}

/// I/O hook: `Some(truncated_len)` when an armed `tornwrite` rule fires
/// at `site` — the caller should persist only that prefix, modeling a
/// crash mid-write.
#[cfg(feature = "active")]
pub fn torn_write(site: &str, len: usize) -> Option<usize> {
    armed::fire(site, |k| matches!(k, FaultKind::TornWrite)).map(|_| len / 2)
}

/// I/O hook: `Some(truncated_len)` when an armed `tornwrite` rule fires
/// at `site` — the caller should persist only that prefix, modeling a
/// crash mid-write.
#[cfg(not(feature = "active"))]
#[inline(always)]
pub fn torn_write(_site: &str, _len: usize) -> Option<usize> {
    None
}

// ---------------------------------------------------------------------------
// Deterministic randomness + retry backoff
// ---------------------------------------------------------------------------

/// A tiny xorshift64* generator — the crate's only randomness, used for
/// `%p` probability triggers and backoff jitter. Deterministic per seed.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator (a fixed scramble maps every seed, including
    /// 0, to a non-degenerate state).
    pub fn new(seed: u64) -> Self {
        XorShift(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x1234_5678_9ABC_DEF1),
        )
    }

    /// The next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The deterministic per-hit chance draw behind [`Trigger::Probability`]:
/// uniform in `[0, 1)` from (seed, site, hit).
#[cfg_attr(not(feature = "active"), allow(dead_code))]
fn chance(seed: u64, site: &str, hit: u64) -> f64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the site name
    for b in site.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let x = XorShift::new(seed ^ h ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A capped-exponential retry policy with seeded "equal jitter": attempt
/// `k` (1-based) waits `e/2 + uniform(0..=e/2)` where
/// `e = min(cap_ms, base_ms << (k-1))`. Deterministic per seed, so a
/// flapping-listener test replays the same schedule every run.
///
/// ```
/// use hh_fault::RetryPolicy;
/// let policy = RetryPolicy::new(4, 100, 1_000, 42);
/// let a: Vec<_> = policy.delays().collect();
/// let b: Vec<_> = policy.delays().collect();
/// assert_eq!(a, b);         // seeded: identical schedules
/// assert_eq!(a.len(), 3);   // attempts - 1 waits
/// assert!(a.iter().all(|d| d.as_millis() >= 50 && d.as_millis() <= 1_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try plus `attempts - 1` retries).
    pub attempts: u32,
    /// First-retry backoff ceiling in milliseconds.
    pub base_ms: u64,
    /// Backoff cap in milliseconds.
    pub cap_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl RetryPolicy {
    /// Builds a policy; `attempts == 0` is treated as 1 (always try
    /// once) and `base_ms == 0` as 1 ms.
    pub fn new(attempts: u32, base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        RetryPolicy {
            attempts: attempts.max(1),
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(base_ms.max(1)),
            seed,
        }
    }

    /// The inter-attempt delays, in order: one per retry.
    pub fn delays(&self) -> Backoff {
        Backoff {
            policy: *self,
            attempt: 0,
            rng: XorShift::new(self.seed),
        }
    }
}

/// Iterator over a [`RetryPolicy`]'s jittered delays.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: XorShift,
}

impl Iterator for Backoff {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.attempt + 1 >= self.policy.attempts {
            return None;
        }
        let exp = self
            .policy
            .base_ms
            .saturating_shl(self.attempt.min(32))
            .min(self.policy.cap_ms)
            .max(1);
        self.attempt += 1;
        let half = exp / 2;
        let jitter = if half == 0 {
            0
        } else {
            self.rng.next_u64() % (half + 1)
        };
        Some(Duration::from_millis(half + jitter))
    }
}

/// `u64::checked_shl` that saturates instead of wrapping; keeps huge
/// retry counts from overflowing the backoff exponent.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if rhs > self.leading_zeros() {
            u64::MAX
        } else {
            self << rhs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_kind() {
        let plan = FaultPlan::parse(
            "seed=9; panic@a#1; stall(25)@b#2; shortread@c#3; eintr@d%0.5; tornwrite@e#4",
        )
        .unwrap();
        assert_eq!(plan.seed(), 9);
        let kinds: Vec<_> = plan.rules().iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::Panic,
                FaultKind::Stall { ms: 25 },
                FaultKind::ShortRead,
                FaultKind::Eintr,
                FaultKind::TornWrite,
            ]
        );
        assert_eq!(plan.rules()[3].trigger, Trigger::Probability(0.5));
        assert_eq!(plan.rules()[4].site, "e");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "panic",       // no site
            "explode@x#1", // unknown kind
            "panic@x",     // no trigger
            "panic@x#0",   // 0 is not a hit number
            "panic@#1",    // empty site
            "eintr@x%1.5", // probability out of range
            "stall(oops)@x#1",
            "seed=minus-one",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(FaultPlan::parse("  ;; ").unwrap().rules().is_empty());
    }

    #[test]
    fn chance_is_deterministic_and_in_range() {
        for hit in 1..100u64 {
            let a = chance(7, "net::read", hit);
            let b = chance(7, "net::read", hit);
            assert_eq!(a, b);
            assert!((0.0..1.0).contains(&a));
        }
        // different sites decorrelate
        assert_ne!(chance(7, "net::read", 1), chance(7, "net::write", 1));
    }

    #[test]
    fn backoff_is_capped_monotone_in_expectation_and_seeded() {
        let policy = RetryPolicy::new(10, 50, 400, 3);
        let delays: Vec<_> = policy.delays().collect();
        assert_eq!(delays.len(), 9);
        for (i, d) in delays.iter().enumerate() {
            let exp = (50u64 << i.min(32)).min(400);
            assert!(d.as_millis() as u64 >= exp / 2, "attempt {i}: {d:?}");
            assert!(d.as_millis() as u64 <= exp, "attempt {i}: {d:?}");
        }
        assert_eq!(
            delays,
            RetryPolicy::new(10, 50, 400, 3)
                .delays()
                .collect::<Vec<_>>()
        );
        // zero-retry policies yield nothing; degenerate inputs are clamped
        assert_eq!(RetryPolicy::new(0, 0, 0, 0).delays().count(), 0);
        assert_eq!(RetryPolicy::new(2, 0, 0, 0).delays().count(), 1);
        // huge attempt counts must not overflow the shift
        assert!(RetryPolicy::new(200, 1 << 40, u64::MAX, 1)
            .delays()
            .all(|d| d.as_millis() > 0));
    }

    #[cfg(feature = "active")]
    mod active {
        use super::super::*;

        /// The armed plan is process-global; these tests serialize on it.
        fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
            static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
            let _guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
            install(plan);
            let out = f();
            clear();
            out
        }

        #[test]
        fn nth_hit_panics_exactly_once() {
            with_plan(FaultPlan::new(0).panic_on("t::site", 3), || {
                fault_point("t::site");
                fault_point("t::site");
                let hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(|_| {}));
                let caught = std::panic::catch_unwind(|| fault_point("t::site"));
                std::panic::set_hook(hook);
                assert!(caught.is_err(), "third hit must panic");
                fault_point("t::site"); // once only: the fourth hit is free
            });
        }

        #[test]
        fn hooks_are_noops_without_a_plan() {
            // no install(): fast path
            fault_point("t::none");
            assert_eq!(short_read("t::none", 8), 8);
            assert!(!eintr("t::none"));
            assert_eq!(torn_write("t::none", 8), None);
        }

        #[test]
        fn io_hooks_fire_on_schedule_and_respect_site_and_kind() {
            let plan = FaultPlan::new(0)
                .short_read_on("t::io", 2)
                .torn_write_on("t::io", 1)
                .eintr_on("t::other", 1);
            with_plan(plan, || {
                // wrong site: untouched
                assert_eq!(short_read("t::elsewhere", 100), 100);
                // hit 1 passes, hit 2 halves — and the tornwrite rule at
                // the same site keeps its own independent counter
                assert_eq!(short_read("t::io", 100), 100);
                assert_eq!(short_read("t::io", 100), 50);
                assert_eq!(torn_write("t::io", 100), Some(50));
                assert_eq!(torn_write("t::io", 100), None);
                assert!(eintr("t::other"));
                assert!(!eintr("t::other"));
                // a short read never truncates to zero
                assert_eq!(short_read("t::io", 1), 1);
            });
        }

        #[test]
        fn probability_one_always_fires_and_zero_never_does() {
            let plan = FaultPlan::new(11)
                .prob("t::always", FaultKind::Eintr, 1.0)
                .prob("t::never", FaultKind::Eintr, 0.0);
            with_plan(plan, || {
                for _ in 0..20 {
                    assert!(eintr("t::always"));
                    assert!(!eintr("t::never"));
                }
            });
        }

        #[test]
        fn env_install_parses_and_arms() {
            // var unset: nothing happens
            std::env::remove_var(ENV_PLAN);
            assert_eq!(install_from_env(), Ok(false));
        }
    }
}
