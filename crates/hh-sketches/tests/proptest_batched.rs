//! Property tests for the batched ingest paths (the PR 4 pre-aggregation
//! pipeline): for every `AlgoKind`, any mix of `update_batch` chunks,
//! weighted `update_by` calls and single `update`s must be observationally
//! equivalent to the plain per-item `update` loop over the same arrival
//! sequence.
//!
//! "Observationally equivalent" is exact for the counter algorithms
//! (identical `entries()` including tie order — their batched paths only
//! collapse *adjacent* runs, which commutes with splitting). For the
//! sketch-backed engines the *estimator state* is exact (identical point
//! estimates and `stream_len` — classic Count-Min and Count-Sketch are
//! additive, so full per-item pre-aggregation is lossless), while the
//! candidate heap is a heuristic whose within-batch refresh order is
//! unspecified: the tests pin down that every reported candidate carries
//! the sketch's own (identical) estimate.

use proptest::collection::vec;
use proptest::prelude::*;

use hh_counters::FrequencyEstimator;
use hh_sketches::engine::{AlgoKind, Engine, EngineConfig};
use hh_sketches::{CountMin, CountSketch, UpdateRule};

/// One ingest segment: `kind` selects the ingestion surface engine A uses.
type Seg = (u64, u64, u8);

fn segments() -> impl Strategy<Value = Vec<Seg>> {
    // (item, weight, kind): kind 0 => part of an update_batch chunk,
    // 1 => update_by(item, weight), 2 => `weight` single updates.
    vec((1u64..16, 1u64..4, 0u8..3), 1..80)
}

/// Expands the segment list into the logical per-item arrival sequence.
fn expand(segs: &[Seg]) -> Vec<u64> {
    let mut out = Vec::new();
    for &(item, w, _) in segs {
        out.extend(std::iter::repeat_n(item, w as usize));
    }
    out
}

/// Drives engine `a` through the mixed fast-path surfaces: consecutive
/// kind-0 segments accumulate into one `update_batch` chunk (flushed when
/// the kind changes), kind 1 uses `update_by`, kind 2 the unit loop.
fn drive_mixed(a: &mut Engine<u64>, segs: &[Seg]) {
    let mut chunk: Vec<u64> = Vec::new();
    for &(item, w, kind) in segs {
        if kind == 0 {
            chunk.extend(std::iter::repeat_n(item, w as usize));
            continue;
        }
        if !chunk.is_empty() {
            a.update_batch(&chunk);
            chunk.clear();
        }
        match kind {
            1 => a.update_by(item, w),
            _ => {
                for _ in 0..w {
                    a.update(item);
                }
            }
        }
    }
    if !chunk.is_empty() {
        a.update_batch(&chunk);
    }
}

proptest! {
    /// Counter algorithms: the batched/weighted paths end in *exactly* the
    /// per-item-loop state — entries (with tie order), estimates, bounds
    /// and stream length all match.
    #[test]
    fn counter_batched_paths_are_exactly_per_item(
        segs in segments(),
        m in 2usize..48,
        seed in 0u64..8,
    ) {
        let arrivals = expand(&segs);
        for algo in [
            AlgoKind::SpaceSaving,
            AlgoKind::Frequent,
            AlgoKind::LossyCounting,
            AlgoKind::StickySampling,
        ] {
            let config = EngineConfig::new(algo).counters(m).seed(seed);
            let mut mixed = config.build::<u64>().expect("engine builds");
            let mut unit = config.build::<u64>().expect("engine builds");
            drive_mixed(&mut mixed, &segs);
            for &x in &arrivals {
                unit.update(x);
            }
            prop_assert_eq!(mixed.stream_len(), unit.stream_len(), "{}", algo);
            prop_assert_eq!(mixed.entries(), unit.entries(), "{}", algo);
            for i in 0..16u64 {
                prop_assert_eq!(mixed.estimate(&i), unit.estimate(&i), "{} item {}", algo, i);
                prop_assert_eq!(
                    mixed.report().interval(&i),
                    unit.report().interval(&i),
                    "{} item {} interval", algo, i
                );
            }
        }
    }

    /// Sketch-backed engines: the sketch state after any mix of batched
    /// and unit ingestion is identical to the per-item loop's (additive
    /// updates), so every point estimate and the stream length match; the
    /// candidate heap always reports the sketch's own estimates.
    #[test]
    fn sketch_batched_paths_match_per_item_estimates(
        segs in segments(),
        m in 32usize..64,
        seed in 0u64..8,
    ) {
        let arrivals = expand(&segs);
        for algo in [AlgoKind::CountMin, AlgoKind::CountSketch] {
            let config = EngineConfig::new(algo).counters(m).seed(seed);
            let mut mixed = config.build::<u64>().expect("engine builds");
            let mut unit = config.build::<u64>().expect("engine builds");
            drive_mixed(&mut mixed, &segs);
            for &x in &arrivals {
                unit.update(x);
            }
            prop_assert_eq!(mixed.stream_len(), unit.stream_len(), "{}", algo);
            for i in 0..16u64 {
                prop_assert_eq!(mixed.estimate(&i), unit.estimate(&i), "{} item {}", algo, i);
            }
            for (item, est) in mixed.entries() {
                prop_assert_eq!(est, mixed.estimate(&item), "{} candidate {}", algo, item);
            }
        }
    }

    /// The bare sketches (no candidate wrapper): full pre-aggregation is
    /// bit-exact against the unit loop for classic Count-Min and
    /// Count-Sketch, and the run-length path is bit-exact for conservative
    /// Count-Min (cells compared directly).
    #[test]
    fn bare_sketch_update_batch_is_cell_exact(
        stream in vec(1u64..32, 1..400),
        seed in 0u64..8,
    ) {
        let mut batched: CountMin<u64> = CountMin::new(4, 32, seed, UpdateRule::Classic);
        let mut unit: CountMin<u64> = CountMin::new(4, 32, seed, UpdateRule::Classic);
        batched.update_batch(&stream);
        for &x in &stream {
            unit.update(x);
        }
        prop_assert_eq!(batched.cells(), unit.cells(), "classic CM cells");

        let mut batched: CountMin<u64> = CountMin::new(4, 32, seed, UpdateRule::Conservative);
        let mut unit: CountMin<u64> = CountMin::new(4, 32, seed, UpdateRule::Conservative);
        batched.update_batch(&stream);
        for &x in &stream {
            unit.update(x);
        }
        prop_assert_eq!(batched.cells(), unit.cells(), "conservative CM cells");

        let mut batched: CountSketch<u64> = CountSketch::new(5, 32, seed);
        let mut unit: CountSketch<u64> = CountSketch::new(5, 32, seed);
        batched.update_batch(&stream);
        for &x in &stream {
            unit.update(x);
        }
        prop_assert_eq!(batched.cells(), unit.cells(), "CS cells");
    }
}

/// The commutativity flags that gate full pre-aggregation: additive
/// sketches commute, everything whose state is order-sensitive does not.
#[test]
fn updates_commute_flags() {
    let cm_classic: CountMin<u64> = CountMin::new(2, 8, 0, UpdateRule::Classic);
    let cm_cu: CountMin<u64> = CountMin::new(2, 8, 0, UpdateRule::Conservative);
    let cs: CountSketch<u64> = CountSketch::new(2, 8, 0);
    assert!(cm_classic.updates_commute());
    assert!(!cm_cu.updates_commute());
    assert!(cs.updates_commute());
    for algo in [AlgoKind::SpaceSaving, AlgoKind::Frequent] {
        let e = EngineConfig::new(algo).counters(8).build::<u64>().unwrap();
        assert!(
            !FrequencyEstimator::updates_commute(&e),
            "{algo}: counter states are order-sensitive"
        );
    }
}
