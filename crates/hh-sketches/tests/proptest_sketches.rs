//! Property-based tests on the sketch baselines.

use proptest::collection::vec;
use proptest::prelude::*;

use hh_counters::FrequencyEstimator;
use hh_sketches::{CountMin, CountSketch, SketchHeavyHitters, UpdateRule};

fn exact(stream: &[u64], item: u64) -> u64 {
    stream.iter().filter(|&&x| x == item).count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn countmin_never_underestimates(
        stream in vec(1u64..50, 0..300),
        seed in 0u64..100,
        depth in 1usize..5,
        width in 1usize..64
    ) {
        for rule in [UpdateRule::Classic, UpdateRule::Conservative] {
            let mut cm: CountMin<u64> = CountMin::new(depth, width, seed, rule);
            for &x in &stream {
                cm.update(x);
            }
            for item in 1..=50u64 {
                prop_assert!(cm.estimate(&item) >= exact(&stream, item));
            }
        }
    }

    #[test]
    fn conservative_no_worse_than_classic(
        stream in vec(1u64..50, 0..300),
        seed in 0u64..100
    ) {
        let mut classic: CountMin<u64> = CountMin::new(3, 16, seed, UpdateRule::Classic);
        let mut cons: CountMin<u64> = CountMin::new(3, 16, seed, UpdateRule::Conservative);
        for &x in &stream {
            classic.update(x);
            cons.update(x);
        }
        for item in 1..=50u64 {
            prop_assert!(cons.estimate(&item) <= classic.estimate(&item));
        }
    }

    #[test]
    fn sketches_exact_with_no_collisions(
        stream in vec(1u64..10, 0..100),
        seed in 0u64..100
    ) {
        // width >> distinct items: collisions vanishingly unlikely for the
        // 9-item universe, so estimates are exact.
        let mut cm: CountMin<u64> = CountMin::new(4, 1 << 14, seed, UpdateRule::Classic);
        let mut cs: CountSketch<u64> = CountSketch::new(5, 1 << 14, seed);
        for &x in &stream {
            cm.update(x);
            cs.update(x);
        }
        for item in 1..=9u64 {
            let f = exact(&stream, item);
            prop_assert_eq!(cm.estimate(&item), f);
            prop_assert_eq!(cs.estimate(&item), f);
        }
    }

    #[test]
    fn sketch_bulk_equals_unit(
        updates in vec((1u64..20, 1u64..8), 0..50),
        seed in 0u64..100
    ) {
        let mut bulk: CountMin<u64> = CountMin::new(3, 32, seed, UpdateRule::Classic);
        let mut unit: CountMin<u64> = CountMin::new(3, 32, seed, UpdateRule::Classic);
        let mut cs_bulk: CountSketch<u64> = CountSketch::new(3, 32, seed);
        let mut cs_unit: CountSketch<u64> = CountSketch::new(3, 32, seed);
        for &(item, c) in &updates {
            bulk.update_by(item, c);
            cs_bulk.update_by(item, c);
            for _ in 0..c {
                unit.update(item);
                cs_unit.update(item);
            }
        }
        for item in 1..=20u64 {
            prop_assert_eq!(bulk.estimate(&item), unit.estimate(&item));
            prop_assert_eq!(cs_bulk.signed_estimate(&item), cs_unit.signed_estimate(&item));
        }
    }

    #[test]
    fn tracker_candidates_bounded_and_estimates_match_sketch(
        stream in vec(1u64..40, 0..200),
        cap in 1usize..10
    ) {
        let cm: CountMin<u64> = CountMin::new(3, 64, 5, UpdateRule::Classic);
        let mut hh = SketchHeavyHitters::new(cm, cap);
        for &x in &stream {
            hh.update(x);
        }
        prop_assert!(hh.stored_len() <= cap);
        for (item, est) in hh.entries() {
            prop_assert_eq!(est, hh.estimate(&item));
        }
    }

    #[test]
    fn seeds_change_tables_but_not_totals(stream in vec(1u64..30, 1..200)) {
        let mut a: CountMin<u64> = CountMin::new(3, 64, 1, UpdateRule::Classic);
        let mut b: CountMin<u64> = CountMin::new(3, 64, 2, UpdateRule::Classic);
        for &x in &stream {
            a.update(x);
            b.update(x);
        }
        prop_assert_eq!(a.stream_len(), b.stream_len());
        // both remain valid overestimates regardless of seed
        for item in 1..=30u64 {
            let f = exact(&stream, item);
            prop_assert!(a.estimate(&item) >= f);
            prop_assert!(b.estimate(&item) >= f);
        }
    }
}
