//! Property tests for the `hh::engine` façade: an `EngineConfig`-built
//! engine must be *observationally identical* to the directly-constructed
//! backend on the same stream (the façade adds dispatch, never behavior),
//! snapshots must round-trip losslessly through JSON, and `Engine::merge`
//! must agree with the generic `merge_full` replay it documents.

use proptest::collection::vec;
use proptest::prelude::*;

use hh_counters::merge::merge_full;
use hh_counters::{FrequencyEstimator, Frequent, LossyCounting, SpaceSaving, StickySampling};
use hh_sketches::engine::{AlgoKind, Engine, EngineConfig};
use hh_sketches::{CountMin, CountSketch, SketchHeavyHitters, UpdateRule};

/// The sticky-sampling support/failure parameters `EngineConfig::build`
/// hard-wires (kept in sync with `engine.rs`).
const STICKY_SUPPORT: f64 = 0.01;
const STICKY_DELTA: f64 = 0.1;

/// Mirror of the engine's private sketch budget split: a tenth (at least
/// 16 slots, at most half) goes to the candidate heap.
fn sketch_split(budget: usize) -> (usize, usize) {
    let candidates = (budget / 10).max(16).min(budget / 2);
    (budget - candidates, candidates)
}

/// Builds the same backend `EngineConfig::new(algo).counters(m).seed(seed)`
/// builds, directly — no engine wrapper.
fn direct_backend(algo: AlgoKind, m: usize, seed: u64) -> Box<dyn FrequencyEstimator<u64>> {
    match algo {
        AlgoKind::SpaceSaving => Box::new(SpaceSaving::new(m)),
        AlgoKind::Frequent => Box::new(Frequent::new(m)),
        AlgoKind::LossyCounting => Box::new(LossyCounting::with_width(m as u64)),
        AlgoKind::StickySampling => Box::new(StickySampling::new(
            1.0 / (m.max(2)) as f64,
            STICKY_SUPPORT,
            STICKY_DELTA,
            seed | 1,
        )),
        AlgoKind::CountMin => {
            let (cells, candidates) = sketch_split(m);
            Box::new(SketchHeavyHitters::new(
                CountMin::with_budget(cells.max(4), 4, seed, UpdateRule::Classic),
                candidates,
            ))
        }
        AlgoKind::CountSketch => {
            let (cells, candidates) = sketch_split(m);
            Box::new(SketchHeavyHitters::new(
                CountSketch::with_budget(cells.max(5), 5, seed),
                candidates,
            ))
        }
    }
}

fn stream_strategy(len: usize) -> impl Strategy<Value = Vec<u64>> {
    vec(1u64..20, 1..len)
}

proptest! {
    /// The engine is a zero-behavior wrapper: entries, estimates, bounds,
    /// stream length and stored size all match the direct backend, for
    /// every `AlgoKind`.
    #[test]
    fn engine_is_observationally_identical_to_backend(
        stream in stream_strategy(300),
        m in 16usize..64,
        seed in 0u64..16,
    ) {
        for algo in AlgoKind::ALL {
            let mut engine = EngineConfig::new(algo)
                .counters(m)
                .seed(seed)
                .build::<u64>()
                .expect("engine builds");
            let mut direct = direct_backend(algo, m, seed);

            // identical op sequence: a batched prefix, then unit updates
            let split = stream.len() / 2;
            engine.update_batch(&stream[..split]);
            direct.update_batch(&stream[..split]);
            for &x in &stream[split..] {
                engine.update(x);
                direct.update(x);
            }

            prop_assert_eq!(engine.stream_len(), direct.stream_len(), "{}", algo);
            prop_assert_eq!(engine.stored_len(), direct.stored_len(), "{}", algo);
            prop_assert_eq!(engine.entries(), direct.entries(), "{}", algo);
            for i in 0..20u64 {
                prop_assert_eq!(engine.estimate(&i), direct.estimate(&i), "{} item {}", algo, i);
                prop_assert_eq!(
                    engine.report().interval(&i),
                    (direct.lower_estimate(&i), direct.upper_estimate(&i)),
                    "{} item {} interval", algo, i
                );
            }
        }
    }

    /// Snapshots round-trip through JSON losslessly for every `AlgoKind`,
    /// and the rehydrated engine continues the stream bit-identically
    /// (including RNG state for the randomized backends).
    #[test]
    fn snapshot_roundtrip_preserves_state_and_future(
        stream in stream_strategy(200),
        suffix in stream_strategy(100),
        m in 16usize..48,
        seed in 0u64..8,
    ) {
        for algo in AlgoKind::ALL {
            let mut engine = EngineConfig::new(algo)
                .counters(m)
                .seed(seed)
                .build::<u64>()
                .expect("engine builds");
            engine.update_batch(&stream);

            let json = engine.to_json().expect("serialize");
            let mut back: Engine<u64> = Engine::from_json(&json).expect("deserialize");

            prop_assert_eq!(back.algo(), algo);
            prop_assert_eq!(back.stream_len(), engine.stream_len(), "{}", algo);
            // tie order among equal counts tracks table insertion order,
            // which a round-trip legitimately reshuffles — compare the
            // multiset in canonical order
            let canonical = |e: &Engine<u64>| {
                let mut v = e.entries();
                v.sort_by_key(|&(item, count)| (std::cmp::Reverse(count), item));
                v
            };
            prop_assert_eq!(canonical(&back), canonical(&engine), "{}", algo);

            engine.update_batch(&suffix);
            back.update_batch(&suffix);
            for i in 0..20u64 {
                prop_assert_eq!(
                    back.estimate(&i), engine.estimate(&i),
                    "{} diverged after resume at item {}", algo, i
                );
            }
        }
    }

    /// `Engine::merge` implements the documented merge per backend: the
    /// replay backends (SPACESAVING, FREQUENT) produce exactly the counters
    /// `merge_full(&[b], || a)` produces on the direct backends (the extra
    /// bound bookkeeping never changes counts), STICKY SAMPLING is an exact
    /// table union, and every merged engine reports the true combined `F1`
    /// and sound per-item intervals.
    #[test]
    fn engine_merge_agrees_with_merge_full(
        s1 in stream_strategy(200),
        s2 in stream_strategy(200),
        m in 16usize..48,
        seed in 0u64..8,
    ) {
        let combined_len = (s1.len() + s2.len()) as u64;
        let exact = |i: u64| {
            (s1.iter().filter(|&&x| x == i).count() + s2.iter().filter(|&&x| x == i).count()) as u64
        };
        for algo in [
            AlgoKind::SpaceSaving,
            AlgoKind::Frequent,
            AlgoKind::LossyCounting,
            AlgoKind::StickySampling,
        ] {
            let config = EngineConfig::new(algo).counters(m).seed(seed);
            let mut ea = config.build::<u64>().expect("engine builds");
            let mut eb = config.build::<u64>().expect("engine builds");
            ea.update_batch(&s1);
            eb.update_batch(&s2);

            let mut da = direct_backend(algo, m, seed);
            let mut db = direct_backend(algo, m, seed);
            da.update_batch(&s1);
            db.update_batch(&s2);
            let union = |i: &u64| da.estimate(i) + db.estimate(i);

            ea.merge(&eb).expect("same config merges");

            // merged engines always report the true combined stream length
            prop_assert_eq!(ea.stream_len(), combined_len, "{}", algo);

            match algo {
                AlgoKind::SpaceSaving | AlgoKind::Frequent => {
                    // counter replay: identical counts to the generic
                    // merge_full on the direct backends
                    let expected = merge_full(&[db], move || da);
                    prop_assert_eq!(ea.entries(), expected.entries(), "{}", algo);
                    for i in 0..20u64 {
                        prop_assert_eq!(
                            ea.estimate(&i), expected.estimate(&i),
                            "{} item {}", algo, i
                        );
                    }
                }
                AlgoKind::StickySampling => {
                    // exact table union, no re-thinning
                    for i in 0..20u64 {
                        prop_assert_eq!(ea.estimate(&i), union(&i), "{} item {}", algo, i);
                    }
                }
                _ => {
                    // LossyCounting merges by delta union + prune: estimates
                    // never exceed the summed per-shard estimates
                    for i in 0..20u64 {
                        prop_assert!(ea.estimate(&i) <= union(&i), "{} item {}", algo, i);
                    }
                }
            }

            // post-merge intervals stay sound (the regression the
            // absorb bookkeeping exists for): lower ≤ f for every backend,
            // f ≤ upper for the deterministic ones
            let report = ea.report();
            for i in 0..20u64 {
                let f = exact(i);
                let (lo, hi) = report.interval(&i);
                prop_assert!(lo <= f, "{} item {}: lower {} > f {}", algo, i, lo, f);
                if algo != AlgoKind::StickySampling {
                    prop_assert!(hi >= f, "{} item {}: upper {} < f {}", algo, i, hi, f);
                }
            }
        }
    }
}

/// Review regression: a SPACESAVING shard whose entry carries `err > 0`
/// (here item 3 stored as `(count 2, err 1)` after evicting at m = 2) must
/// not certify `lower = 2` for an item that truly occurred once after its
/// snapshot is absorbed elsewhere.
#[test]
fn merged_spacesaving_lower_bounds_stay_sound() {
    let config = EngineConfig::new(AlgoKind::SpaceSaving).counters(2);
    let mut shard = config.build::<u64>().unwrap();
    shard.update_batch(&[1, 2, 3]);
    let mut coordinator = config.build::<u64>().unwrap();
    coordinator.merge(&shard).unwrap();
    let (lo, hi) = coordinator.report().interval(&3);
    assert!(lo <= 1, "certified lower {lo} exceeds the true count 1");
    assert!(hi >= 1);
}

/// Review regression: a FREQUENT shard that performed decrement rounds
/// (here [1,1,1,2,3] at m = 2 leaves entries [(1, 2)] with one decrement)
/// must keep `upper ≥ f` and the true combined `F1` after its snapshot is
/// absorbed elsewhere.
#[test]
fn merged_frequent_upper_bounds_and_f1_stay_sound() {
    let config = EngineConfig::new(AlgoKind::Frequent).counters(2);
    let mut shard = config.build::<u64>().unwrap();
    shard.update_batch(&[1, 1, 1, 2, 3]);
    let mut coordinator = config.build::<u64>().unwrap();
    coordinator.merge(&shard).unwrap();
    assert_eq!(coordinator.stream_len(), 5, "true combined F1");
    let (lo, hi) = coordinator.report().interval(&1);
    assert!(lo <= 3);
    assert!(hi >= 3, "certified upper {hi} below the true count 3");
}
