//! The Count-Sketch (Charikar, Chen, Farach-Colton) — the second sketch
//! comparator from Table 1, with the `(f_i − f̂_i)² ≤ ε/k · F2^res(k)`
//! guarantee using `O((k/ε)·log n)` counters.
//!
//! `d` rows of `w` signed counters; each row pairs a bucket hash with a ±1
//! sign hash. The estimate is the *median* over rows of
//! `sign_r(i) · cell_r(i)`, an unbiased two-sided estimator.

use std::hash::Hash;

use hh_counters::traits::{Bias, FrequencyEstimator};

use crate::hash::{item_key, PolyHash};

/// Count-Sketch over items hashable to `u64` keys.
#[derive(Debug, Clone)]
pub struct CountSketch<I> {
    buckets: Vec<PolyHash>,
    signs: Vec<PolyHash>,
    table: Vec<i64>, // d × w, row-major
    width: usize,
    stream_len: u64,
    _marker: std::marker::PhantomData<fn(&I)>,
}

impl<I: Eq + Hash + Clone> CountSketch<I> {
    /// Creates a sketch with `depth` rows × `width` columns, seeded.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth >= 1 && width >= 1);
        let buckets = (0..depth)
            .map(|r| PolyHash::new(2, seed.wrapping_add(0xB5_C0 * (r as u64 + 1))))
            .collect();
        let signs = (0..depth)
            .map(|r| PolyHash::new(2, seed.wrapping_add(0x51_6E * (r as u64 + 1)) ^ 0xDEAD_BEEF))
            .collect();
        CountSketch {
            buckets,
            signs,
            table: vec![0; depth * width],
            width,
            stream_len: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Builds the widest sketch with `depth` rows fitting `total_counters`
    /// cells (equal-space comparisons).
    pub fn with_budget(total_counters: usize, depth: usize, seed: u64) -> Self {
        assert!(total_counters >= depth);
        Self::new(depth, total_counters / depth, seed)
    }

    /// Number of rows `d`.
    pub fn depth(&self) -> usize {
        self.buckets.len()
    }

    /// Number of columns `w`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The signed (possibly negative) median estimate — the sketch's native
    /// estimator before clamping to the non-negative frequency domain.
    pub fn signed_estimate(&self, item: &I) -> i64 {
        let key = item_key(item);
        let mut row_estimates: Vec<i64> = (0..self.depth())
            .map(|r| {
                let idx = r * self.width + self.buckets[r].bucket(key, self.width);
                self.signs[r].sign(key) * self.table[idx]
            })
            .collect();
        row_estimates.sort_unstable();
        let d = row_estimates.len();
        if d % 2 == 1 {
            row_estimates[d / 2]
        } else {
            // even depth: average the middle pair (rounding toward zero)
            (row_estimates[d / 2 - 1] + row_estimates[d / 2]) / 2
        }
    }
}

impl<I: Eq + Hash + Clone> FrequencyEstimator<I> for CountSketch<I> {
    fn name(&self) -> &'static str {
        "CountSketch"
    }

    /// Total number of counter cells `d·w`.
    fn capacity(&self) -> usize {
        self.table.len()
    }

    fn update_by(&mut self, item: I, count: u64) {
        if count == 0 {
            return;
        }
        self.stream_len += count;
        let key = item_key(&item);
        for r in 0..self.depth() {
            let idx = r * self.width + self.buckets[r].bucket(key, self.width);
            self.table[idx] += self.signs[r].sign(key) * count as i64;
        }
    }

    /// The median estimate clamped to the non-negative domain.
    fn estimate(&self, item: &I) -> u64 {
        self.signed_estimate(item).max(0) as u64
    }

    /// Sketches do not store items.
    fn stored_len(&self) -> usize {
        0
    }

    /// Sketches cannot enumerate items; use
    /// [`crate::topk_tracker::SketchHeavyHitters`] to track candidates.
    fn entries(&self) -> Vec<(I, u64)> {
        Vec::new()
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::TwoSided
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_width_huge() {
        let mut cs: CountSketch<u64> = CountSketch::new(5, 1 << 14, 3);
        for &x in &[1u64, 1, 2, 3, 3, 3] {
            cs.update(x);
        }
        assert_eq!(cs.estimate(&1), 2);
        assert_eq!(cs.estimate(&2), 1);
        assert_eq!(cs.estimate(&3), 3);
        assert_eq!(cs.estimate(&99), 0);
    }

    #[test]
    fn median_estimate_close_on_skewed_stream() {
        // heavy item should be estimated within the L2 tail noise
        let mut stream: Vec<u64> = vec![7; 5000];
        stream.extend((0..10_000u64).map(|i| i % 500 + 100));
        let mut cs: CountSketch<u64> = CountSketch::new(5, 512, 9);
        for &x in &stream {
            cs.update(x);
        }
        let est = cs.estimate(&7);
        assert!(
            (est as i64 - 5000).unsigned_abs() < 500,
            "heavy estimate {est} too far from 5000"
        );
    }

    #[test]
    fn unbiased_signs_give_small_error_for_absent_items() {
        let mut cs: CountSketch<u64> = CountSketch::new(7, 256, 1);
        for i in 0..20_000u64 {
            cs.update(i % 400);
        }
        // absent items should be near zero
        let mut bad = 0;
        for i in 1000..1100u64 {
            if cs.estimate(&i) > 400 {
                bad += 1;
            }
        }
        assert!(bad <= 3, "{bad} absent items estimated far from 0");
    }

    #[test]
    fn even_depth_median_works() {
        let mut cs: CountSketch<u64> = CountSketch::new(4, 1 << 12, 5);
        for _ in 0..10 {
            cs.update(42u64);
        }
        assert_eq!(cs.estimate(&42), 10);
    }

    #[test]
    fn update_by_matches_unit_updates() {
        let mut a: CountSketch<u64> = CountSketch::new(3, 64, 7);
        let mut b: CountSketch<u64> = CountSketch::new(3, 64, 7);
        for (i, c) in [(3u64, 4u64), (5, 2), (3, 1)] {
            a.update_by(i, c);
            for _ in 0..c {
                b.update(i);
            }
        }
        for i in 0..10u64 {
            assert_eq!(a.signed_estimate(&i), b.signed_estimate(&i));
        }
    }
}
