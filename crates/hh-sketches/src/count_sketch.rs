//! The Count-Sketch (Charikar, Chen, Farach-Colton) — the second sketch
//! comparator from Table 1, with the `(f_i − f̂_i)² ≤ ε/k · F2^res(k)`
//! guarantee using `O((k/ε)·log n)` counters.
//!
//! `d` rows of `w` signed counters; each row derives its bucket *and* its
//! ±1 sign from a single pairwise polynomial evaluation (sign from the low
//! bit, bucket from the remaining bits — the classic folding that halves
//! the hashing work per row). The estimate is the *median* over rows of
//! `sign_r(i) · cell_r(i)`, an unbiased two-sided estimator.

use std::hash::Hash;

use hh_counters::error::Error;
use hh_counters::traits::{for_each_aggregated, for_each_run, Bias, FrequencyEstimator};

use crate::hash::{item_key, RowHashes};

/// Count-Sketch over items hashable to `u64` keys.
///
/// Like [`crate::count_min::CountMin`], the table is one contiguous
/// row-major allocation with precomputed per-row base offsets and a flat
/// row-hash coefficient array.
#[derive(Debug, Clone)]
pub struct CountSketch<I> {
    rows: RowHashes,
    table: Vec<i64>, // d × w, row-major
    /// Precomputed row base offsets into `table` (`r * width`).
    row_base: Vec<usize>,
    /// Reused batched-ingest aggregation buffer of `(key, count)` pairs.
    agg_scratch: Vec<(u64, u64)>,
    width: usize,
    seed: u64,
    stream_len: u64,
    _marker: std::marker::PhantomData<fn(&I)>,
}

impl<I: Eq + Hash + Clone> CountSketch<I> {
    /// Creates a sketch with `depth` rows × `width` columns, seeded.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth >= 1 && width >= 1);
        let rows = RowHashes::new(depth, |r| seed.wrapping_add(0xB5_C0 * (r as u64 + 1)));
        CountSketch {
            rows,
            table: vec![0; depth * width],
            row_base: (0..depth).map(|r| r * width).collect(),
            agg_scratch: Vec::new(),
            width,
            seed,
            stream_len: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Builds the widest sketch with `depth` rows fitting `total_counters`
    /// cells (equal-space comparisons).
    pub fn with_budget(total_counters: usize, depth: usize, seed: u64) -> Self {
        assert!(total_counters >= depth);
        Self::new(depth, total_counters / depth, seed)
    }

    /// Number of rows `d`.
    pub fn depth(&self) -> usize {
        self.rows.depth()
    }

    /// Number of columns `w`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The seed the row hashes were derived from (snapshot capture).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw `d × w` signed cell table, row-major (snapshot capture).
    pub fn cells(&self) -> &[i64] {
        &self.table
    }

    /// Rebuilds a sketch from snapshot parts; the hash and sign functions
    /// are re-derived from `seed`.
    ///
    /// Returns [`Error::CorruptSnapshot`] when `cells` does not have
    /// exactly `depth × width` entries or a dimension is zero.
    pub fn from_parts(
        depth: usize,
        width: usize,
        seed: u64,
        stream_len: u64,
        cells: Vec<i64>,
    ) -> Result<Self, Error> {
        if depth == 0 || width == 0 {
            return Err(Error::corrupt_snapshot("depth and width must be positive"));
        }
        if cells.len() != depth * width {
            return Err(Error::corrupt_snapshot(format!(
                "expected {} cells for a {depth}x{width} sketch, got {}",
                depth * width,
                cells.len()
            )));
        }
        let mut s = Self::new(depth, width, seed);
        s.table = cells;
        s.stream_len = stream_len;
        Ok(s)
    }

    /// Cell-wise merge: Count-Sketch is linear, so adding tables yields
    /// exactly the sketch of the concatenated streams.
    ///
    /// Returns [`Error::SnapshotMismatch`] unless shape and seed agree.
    pub fn merge_from(&mut self, other: &CountSketch<I>) -> Result<(), Error> {
        if self.depth() != other.depth() || self.width != other.width || self.seed != other.seed {
            return Err(Error::SnapshotMismatch {
                expected: format!(
                    "CountSketch {}x{} seed {}",
                    self.depth(),
                    self.width,
                    self.seed
                ),
                found: format!(
                    "CountSketch {}x{} seed {}",
                    other.depth(),
                    other.width,
                    other.seed
                ),
            });
        }
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a += b;
        }
        self.stream_len += other.stream_len;
        Ok(())
    }

    /// One update of `count` occurrences for a pre-hashed key: one folded
    /// polynomial evaluation per row yields both the bucket and the sign.
    // lint:hot-path
    fn add_key(&mut self, key: u64, count: u64) {
        self.stream_len += count;
        for r in 0..self.rows.depth() {
            let (sign, bucket) = self.rows.signed_bucket(r, key, self.width);
            self.table[self.row_base[r] + bucket] += sign * count as i64;
        }
    }

    /// The signed (possibly negative) median estimate — the sketch's native
    /// estimator before clamping to the non-negative frequency domain.
    pub fn signed_estimate(&self, item: &I) -> i64 {
        let key = item_key(item);
        let mut row_estimates: Vec<i64> = (0..self.depth())
            .map(|r| {
                let (sign, bucket) = self.rows.signed_bucket(r, key, self.width);
                sign * self.table[self.row_base[r] + bucket]
            })
            .collect();
        row_estimates.sort_unstable();
        let d = row_estimates.len();
        if d % 2 == 1 {
            row_estimates[d / 2]
        } else {
            // even depth: average the middle pair (rounding toward zero)
            (row_estimates[d / 2 - 1] + row_estimates[d / 2]) / 2
        }
    }
}

impl<I: Eq + Hash + Clone> FrequencyEstimator<I> for CountSketch<I> {
    fn name(&self) -> &'static str {
        "CountSketch"
    }

    /// Total number of counter cells `d·w`.
    fn capacity(&self) -> usize {
        self.table.len()
    }

    fn update_by(&mut self, item: I, count: u64) {
        if count == 0 {
            return;
        }
        self.add_key(item_key(&item), count);
    }

    /// Batched ingest: Count-Sketch updates are linear, so the whole batch
    /// is pre-aggregated — run-length collapse into `(key, count)` pairs in
    /// a reused scratch buffer, sort by key, merge, then one weighted
    /// `d`-row sweep per *distinct* key. Exactly equivalent to the
    /// per-element loop.
    // lint:hot-path
    fn update_batch(&mut self, items: &[I]) {
        let mut agg = std::mem::take(&mut self.agg_scratch);
        agg.clear();
        for_each_run(items, |item, run| agg.push((item_key(item), run)));
        for_each_aggregated(&mut agg, |key, count| self.add_key(key, count));
        self.agg_scratch = agg;
    }

    /// The median estimate clamped to the non-negative domain.
    fn estimate(&self, item: &I) -> u64 {
        self.signed_estimate(item).max(0) as u64
    }

    /// Sketches do not store items.
    fn stored_len(&self) -> usize {
        0
    }

    /// Sketches cannot enumerate items; use
    /// [`crate::topk_tracker::SketchHeavyHitters`] to track candidates.
    fn entries(&self) -> Vec<(I, u64)> {
        Vec::new()
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::TwoSided
    }

    /// Count-Sketch updates are linear: invariant under reordering and
    /// aggregation.
    fn updates_commute(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_width_huge() {
        let mut cs: CountSketch<u64> = CountSketch::new(5, 1 << 14, 3);
        for &x in &[1u64, 1, 2, 3, 3, 3] {
            cs.update(x);
        }
        assert_eq!(cs.estimate(&1), 2);
        assert_eq!(cs.estimate(&2), 1);
        assert_eq!(cs.estimate(&3), 3);
        assert_eq!(cs.estimate(&99), 0);
    }

    #[test]
    fn median_estimate_close_on_skewed_stream() {
        // heavy item should be estimated within the L2 tail noise
        let mut stream: Vec<u64> = vec![7; 5000];
        stream.extend((0..10_000u64).map(|i| i % 500 + 100));
        let mut cs: CountSketch<u64> = CountSketch::new(5, 512, 9);
        for &x in &stream {
            cs.update(x);
        }
        let est = cs.estimate(&7);
        assert!(
            (est as i64 - 5000).unsigned_abs() < 500,
            "heavy estimate {est} too far from 5000"
        );
    }

    #[test]
    fn unbiased_signs_give_small_error_for_absent_items() {
        let mut cs: CountSketch<u64> = CountSketch::new(7, 256, 1);
        for i in 0..20_000u64 {
            cs.update(i % 400);
        }
        // absent items should be near zero
        let mut bad = 0;
        for i in 1000..1100u64 {
            if cs.estimate(&i) > 400 {
                bad += 1;
            }
        }
        assert!(bad <= 3, "{bad} absent items estimated far from 0");
    }

    #[test]
    fn even_depth_median_works() {
        let mut cs: CountSketch<u64> = CountSketch::new(4, 1 << 12, 5);
        for _ in 0..10 {
            cs.update(42u64);
        }
        assert_eq!(cs.estimate(&42), 10);
    }

    #[test]
    fn update_batch_matches_unit_updates() {
        let stream: Vec<u64> = (0..2000)
            .flat_map(|i| std::iter::repeat_n(i % 17, (i % 3 + 1) as usize))
            .collect();
        let mut batched: CountSketch<u64> = CountSketch::new(5, 64, 3);
        batched.update_batch(&stream);
        let mut unit: CountSketch<u64> = CountSketch::new(5, 64, 3);
        for &x in &stream {
            unit.update(x);
        }
        assert_eq!(batched.stream_len(), unit.stream_len());
        for i in 0..17u64 {
            assert_eq!(batched.signed_estimate(&i), unit.signed_estimate(&i));
        }
    }

    #[test]
    fn from_parts_roundtrip_and_linear_merge() {
        let mut a: CountSketch<u64> = CountSketch::new(4, 32, 11);
        let mut b: CountSketch<u64> = CountSketch::new(4, 32, 11);
        let mut whole: CountSketch<u64> = CountSketch::new(4, 32, 11);
        for i in 0..300u64 {
            let x = i % 23;
            if i % 2 == 0 {
                a.update(x);
            } else {
                b.update(x);
            }
            whole.update(x);
        }
        let back = CountSketch::<u64>::from_parts(4, 32, 11, a.stream_len(), a.cells().to_vec())
            .expect("valid parts");
        assert_eq!(back.signed_estimate(&1), a.signed_estimate(&1));
        a.merge_from(&b).expect("same shape");
        for i in 0..23u64 {
            assert_eq!(
                a.signed_estimate(&i),
                whole.signed_estimate(&i),
                "linearity"
            );
        }
        let mismatch: CountSketch<u64> = CountSketch::new(4, 64, 11);
        assert!(a.merge_from(&mismatch).is_err());
    }

    #[test]
    fn update_by_matches_unit_updates() {
        let mut a: CountSketch<u64> = CountSketch::new(3, 64, 7);
        let mut b: CountSketch<u64> = CountSketch::new(3, 64, 7);
        for (i, c) in [(3u64, 4u64), (5, 2), (3, 1)] {
            a.update_by(i, c);
            for _ in 0..c {
                b.update(i);
            }
        }
        for i in 0..10u64 {
            assert_eq!(a.signed_estimate(&i), b.signed_estimate(&i));
        }
    }
}
