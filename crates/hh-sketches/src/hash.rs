//! Seeded hash families for the sketches.
//!
//! Count-Min needs pairwise-independent row hashes; Count-Sketch
//! additionally needs pairwise-independent ±1 sign hashes. We implement the
//! classic polynomial construction over the Mersenne prime `p = 2^61 − 1`:
//! a degree-(k−1) polynomial with random coefficients is k-wise
//! independent, and arithmetic mod `2^61 − 1` reduces with shifts instead
//! of division. No external dependency is needed; seeding uses SplitMix64
//! so each `(seed, row)` pair yields an independent function.

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// SplitMix64 — tiny deterministic PRNG used only to derive hash
/// coefficients from a seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, MERSENNE_P)`.
    fn next_mod_p(&mut self) -> u64 {
        loop {
            let v = self.next_u64() & MERSENNE_P; // 61 low bits
            if v < MERSENNE_P {
                return v;
            }
        }
    }
}

/// `(a*x + b) mod (2^61−1)` with lazy modular reduction.
#[inline]
fn mod_p_mul_add(a: u64, x: u64, b: u64) -> u64 {
    // a, x, b < 2^61; use 128-bit product then Mersenne folding.
    let prod = (a as u128) * (x as u128) + (b as u128);
    let lo = (prod & MERSENNE_P as u128) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    // hi < 2^67/2^61 = 2^67-61... one more fold covers all cases
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// A k-wise independent polynomial hash over `[0, 2^61−1)`.
#[derive(Debug, Clone)]
pub struct PolyHash {
    /// Coefficients, constant term last; degree = len − 1.
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Creates a k-wise independent function (`k = degree + 1 ≥ 2`) from a
    /// seed.
    pub fn new(k_wise: usize, seed: u64) -> Self {
        assert!(k_wise >= 2, "need at least pairwise independence");
        let mut rng = SplitMix64::new(seed);
        let mut coeffs: Vec<u64> = (0..k_wise).map(|_| rng.next_mod_p()).collect();
        // leading coefficient non-zero keeps the polynomial degree exact
        if coeffs[0] == 0 {
            coeffs[0] = 1;
        }
        PolyHash { coeffs }
    }

    /// Evaluates the polynomial at `x` (Horner), returning a value in
    /// `[0, 2^61−1)`.
    pub fn hash(&self, x: u64) -> u64 {
        let x = x % MERSENNE_P;
        let mut acc = 0u64;
        for &c in &self.coeffs {
            acc = mod_p_mul_add(acc, x, c);
        }
        acc
    }

    /// Hash reduced onto `[0, buckets)`.
    pub fn bucket(&self, x: u64, buckets: usize) -> usize {
        (self.hash(x) % buckets as u64) as usize
    }

    /// A ±1 sign derived from the hash's low bit (pairwise independent when
    /// the polynomial is).
    pub fn sign(&self, x: u64) -> i64 {
        if self.hash(x) & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

/// Hashes an arbitrary `Hash` item to a `u64` key with the crate's fast
/// hasher; sketches then apply their seeded [`PolyHash`] functions to this
/// key. (The composition stays pairwise independent over the keys actually
/// produced; for `u64`-like items the first step is essentially free.)
pub fn item_key<I: std::hash::Hash>(item: &I) -> u64 {
    use std::hash::BuildHasher;
    // Fixed-state hasher: must be identical across sketch instances so that
    // merged/compared sketches agree on keys.
    hh_counters::fasthash::FxBuildHasher::default().hash_one(item)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mod_p_arithmetic_matches_u128_reference() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            let a = rng.next_u64() % MERSENNE_P;
            let x = rng.next_u64() % MERSENNE_P;
            let b = rng.next_u64() % MERSENNE_P;
            let expect = ((a as u128 * x as u128 + b as u128) % MERSENNE_P as u128) as u64;
            assert_eq!(mod_p_mul_add(a, x, b), expect);
        }
    }

    #[test]
    fn hash_in_range_and_seed_sensitive() {
        let h1 = PolyHash::new(2, 1);
        let h2 = PolyHash::new(2, 2);
        let mut diff = 0;
        for x in 0..100u64 {
            assert!(h1.hash(x) < MERSENNE_P);
            if h1.hash(x) != h2.hash(x) {
                diff += 1;
            }
        }
        assert!(diff > 90, "different seeds disagree almost everywhere");
    }

    #[test]
    fn buckets_roughly_uniform() {
        let h = PolyHash::new(2, 5);
        let buckets = 16;
        let mut counts = vec![0u32; buckets];
        for x in 0..16_000u64 {
            counts[h.bucket(x, buckets)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn signs_balanced() {
        let h = PolyHash::new(2, 11);
        let sum: i64 = (0..10_000u64).map(|x| h.sign(x)).sum();
        assert!(sum.abs() < 500, "signs should be nearly balanced: {sum}");
    }

    #[test]
    fn item_key_stable_across_calls() {
        assert_eq!(item_key(&42u64), item_key(&42u64));
        assert_ne!(item_key(&1u64), item_key(&2u64));
        assert_eq!(item_key(&"abc"), item_key(&"abc"));
    }
}
