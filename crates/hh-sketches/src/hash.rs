//! Seeded hash families for the sketches.
//!
//! Count-Min needs pairwise-independent row hashes; Count-Sketch
//! additionally needs pairwise-independent ±1 sign hashes. We implement the
//! classic polynomial construction over the Mersenne prime `p = 2^61 − 1`:
//! a degree-(k−1) polynomial with random coefficients is k-wise
//! independent, and arithmetic mod `2^61 − 1` reduces with shifts instead
//! of division. No external dependency is needed; seeding uses SplitMix64
//! so each `(seed, row)` pair yields an independent function.

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// SplitMix64 — tiny deterministic PRNG used only to derive hash
/// coefficients from a seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, MERSENNE_P)`.
    fn next_mod_p(&mut self) -> u64 {
        loop {
            let v = self.next_u64() & MERSENNE_P; // 61 low bits
            if v < MERSENNE_P {
                return v;
            }
        }
    }
}

/// `(a*x + b) mod (2^61−1)` with lazy modular reduction.
#[inline]
fn mod_p_mul_add(a: u64, x: u64, b: u64) -> u64 {
    // a, x, b < 2^61; use 128-bit product then Mersenne folding.
    let prod = (a as u128) * (x as u128) + (b as u128);
    let lo = (prod & MERSENNE_P as u128) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    // hi < 2^67/2^61 = 2^67-61... one more fold covers all cases
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// A k-wise independent polynomial hash over `[0, 2^61−1)`.
#[derive(Debug, Clone)]
pub struct PolyHash {
    /// Coefficients, constant term last; degree = len − 1.
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Creates a k-wise independent function (`k = degree + 1 ≥ 2`) from a
    /// seed.
    pub fn new(k_wise: usize, seed: u64) -> Self {
        assert!(k_wise >= 2, "need at least pairwise independence");
        let mut rng = SplitMix64::new(seed);
        let mut coeffs: Vec<u64> = (0..k_wise).map(|_| rng.next_mod_p()).collect();
        // leading coefficient non-zero keeps the polynomial degree exact
        if coeffs[0] == 0 {
            coeffs[0] = 1;
        }
        PolyHash { coeffs }
    }

    /// Evaluates the polynomial at `x` (Horner), returning a value in
    /// `[0, 2^61−1)`.
    pub fn hash(&self, x: u64) -> u64 {
        let x = x % MERSENNE_P;
        let mut acc = 0u64;
        for &c in &self.coeffs {
            acc = mod_p_mul_add(acc, x, c);
        }
        acc
    }

    /// Hash reduced onto `[0, buckets)`.
    pub fn bucket(&self, x: u64, buckets: usize) -> usize {
        (self.hash(x) % buckets as u64) as usize
    }

    /// A ±1 sign derived from the hash's low bit (pairwise independent when
    /// the polynomial is).
    pub fn sign(&self, x: u64) -> i64 {
        if self.hash(x) & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

/// The pairwise-independent row-hash family of a sketch, stored as one
/// flat array of `(a, b)` coefficient pairs.
///
/// Functionally each row is exactly `PolyHash::new(2, row_seed)` — same
/// SplitMix64 coefficient derivation, same Mersenne-prime evaluation — but
/// evaluating *all* rows for one key is a single pass over contiguous
/// memory instead of `d` pointer-chases through separately-allocated
/// coefficient vectors. This is the hot-path form the sketches use; the
/// general [`PolyHash`] remains for k-wise (k > 2) uses.
#[derive(Debug, Clone)]
pub struct RowHashes {
    /// `(a, b)` per row: the row hash is `a·x + b mod (2^61 − 1)`.
    coeffs: Vec<[u64; 2]>,
}

impl RowHashes {
    /// Derives `depth` independent pairwise functions; row `r` uses the
    /// seed `seed_for_row(r)` exactly as `PolyHash::new(2, ·)` would, so
    /// sketch layouts are reproducible from the same seeds across snapshot
    /// round-trips.
    pub fn new(depth: usize, mut seed_for_row: impl FnMut(usize) -> u64) -> Self {
        let coeffs = (0..depth)
            .map(|r| {
                let mut rng = SplitMix64::new(seed_for_row(r));
                let mut a = rng.next_mod_p();
                let b = rng.next_mod_p();
                if a == 0 {
                    a = 1; // keep the polynomial degree exact, as PolyHash does
                }
                [a, b]
            })
            .collect();
        RowHashes { coeffs }
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.coeffs.len()
    }

    /// Row `r`'s hash of `x`, in `[0, 2^61 − 1)`.
    #[inline]
    pub fn hash(&self, r: usize, x: u64) -> u64 {
        let [a, b] = self.coeffs[r];
        mod_p_mul_add(a, x % MERSENNE_P, b)
    }

    /// Row `r`'s hash reduced onto `[0, buckets)`.
    #[inline]
    pub fn bucket(&self, r: usize, x: u64, buckets: usize) -> usize {
        (self.hash(r, x) % buckets as u64) as usize
    }

    /// Row `r`'s hash split into a ±1 sign (low bit) and a bucket (the
    /// remaining bits reduced onto `[0, buckets)`) — the folded evaluation
    /// Count-Sketch uses so one polynomial evaluation serves both the
    /// bucket and the sign hash.
    #[inline]
    pub fn signed_bucket(&self, r: usize, x: u64, buckets: usize) -> (i64, usize) {
        let h = self.hash(r, x);
        let sign = 1 - 2 * (h & 1) as i64;
        (sign, ((h >> 1) % buckets as u64) as usize)
    }
}

/// Hashes an arbitrary `Hash` item to a `u64` key with the crate's fast
/// hasher; sketches then apply their seeded [`PolyHash`] functions to this
/// key. (The composition stays pairwise independent over the keys actually
/// produced; for `u64`-like items the first step is essentially free.)
pub fn item_key<I: std::hash::Hash>(item: &I) -> u64 {
    use std::hash::BuildHasher;
    // Fixed-state hasher: must be identical across sketch instances so that
    // merged/compared sketches agree on keys.
    hh_counters::fasthash::FxBuildHasher::default().hash_one(item)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mod_p_arithmetic_matches_u128_reference() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            let a = rng.next_u64() % MERSENNE_P;
            let x = rng.next_u64() % MERSENNE_P;
            let b = rng.next_u64() % MERSENNE_P;
            let expect = ((a as u128 * x as u128 + b as u128) % MERSENNE_P as u128) as u64;
            assert_eq!(mod_p_mul_add(a, x, b), expect);
        }
    }

    #[test]
    fn hash_in_range_and_seed_sensitive() {
        let h1 = PolyHash::new(2, 1);
        let h2 = PolyHash::new(2, 2);
        let mut diff = 0;
        for x in 0..100u64 {
            assert!(h1.hash(x) < MERSENNE_P);
            if h1.hash(x) != h2.hash(x) {
                diff += 1;
            }
        }
        assert!(diff > 90, "different seeds disagree almost everywhere");
    }

    #[test]
    fn buckets_roughly_uniform() {
        let h = PolyHash::new(2, 5);
        let buckets = 16;
        let mut counts = vec![0u32; buckets];
        for x in 0..16_000u64 {
            counts[h.bucket(x, buckets)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn signs_balanced() {
        let h = PolyHash::new(2, 11);
        let sum: i64 = (0..10_000u64).map(|x| h.sign(x)).sum();
        assert!(sum.abs() < 500, "signs should be nearly balanced: {sum}");
    }

    #[test]
    fn row_hashes_match_polyhash_rows() {
        let seed = 42u64;
        let rows = RowHashes::new(4, |r| seed.wrapping_add(0x9E37 * (r as u64 + 1)));
        for r in 0..4 {
            let poly = PolyHash::new(2, seed.wrapping_add(0x9E37 * (r as u64 + 1)));
            for x in [0u64, 1, 7, 1 << 40, u64::MAX] {
                assert_eq!(rows.hash(r, x), poly.hash(x), "row {r} x {x}");
                assert_eq!(rows.bucket(r, x, 37), poly.bucket(x, 37));
            }
        }
    }

    #[test]
    fn signed_bucket_balanced_and_in_range() {
        let rows = RowHashes::new(1, |_| 9);
        let mut sum = 0i64;
        for x in 0..10_000u64 {
            let (sign, bucket) = rows.signed_bucket(0, x, 64);
            assert!(sign == 1 || sign == -1);
            assert!(bucket < 64);
            sum += sign;
        }
        assert!(sum.abs() < 500, "signs nearly balanced: {sum}");
    }

    #[test]
    fn item_key_stable_across_calls() {
        assert_eq!(item_key(&42u64), item_key(&42u64));
        assert_ne!(item_key(&1u64), item_key(&2u64));
        assert_eq!(item_key(&"abc"), item_key(&"abc"));
    }
}
