//! `hh::pipeline` — a long-lived sharded ingest service with live queries.
//!
//! [`crate::engine`] turned the paper's algorithms into one serving
//! surface; this module turns that surface into a *concurrent* one. A
//! [`Pipeline`] owns `N` worker threads, each holding a private
//! [`Engine`] built from one [`EngineConfig`], fed through bounded
//! channels by a routing coordinator. Queries are **live**: at any point
//! the coordinator collects per-shard [`Snapshot`]s at an epoch boundary
//! and merges them through [`Engine::merge_snapshot`] (full counter
//! replay with bound bookkeeping), so a merged report carries certified
//! intervals while ingest keeps running.
//!
//! Everything rests on the paper's Theorem 11 (Section 6.2): summaries
//! of separate sub-streams merge with only a constant-factor loss —
//! `(A, B)` per shard becomes `(3A, A+B)` merged — **regardless of how
//! the stream was partitioned**. Two consequences shape the design:
//!
//! * routing is a policy choice, not a correctness concern
//!   ([`Routing::HashPartition`] by item hash, or [`Routing::RoundRobin`]
//!   over whole batches — both yield the same merged guarantee);
//! * shards may reorder *within* the sub-stream they were dealt: the
//!   guarantee never conditions on arrival order, so
//!   [`ShardIngest::Aggregate`] pre-aggregates every delivered batch to
//!   one `update_by` per distinct item (a large constant-factor win on
//!   hot-set traffic), while [`ShardIngest::Preserve`] keeps per-shard
//!   arrival order bit-exact — a pipeline in `Preserve` mode is the
//!   streaming twin of [`parallel_summarize`]: collecting its shard
//!   states and k-sparse-merging them ([`Pipeline::merged_k_sparse`])
//!   equals `parallel_summarize` on the same partition, bit for bit.
//!
//! Backpressure is part of the contract: channels hold at most
//! `queue_depth` batches per shard, so a producer that outruns the
//! workers blocks in [`Pipeline::send`] instead of queuing unboundedly.
//!
//! **Supervision.** Shard workers run under `catch_unwind`, and the
//! coordinator notices a dead shard at its next interaction with it (a
//! ship or an epoch marker — detection is lazy, there is no watchdog
//! thread). With [`PipelineConfig::supervised`] on (the default) the
//! shard is respawned from its last epoch-boundary [`Snapshot`] and the
//! mass shipped since that snapshot is charged to the pipeline's *lost*
//! account: merged views widen `stream_len`, upper estimates and error
//! terms by the lost mass (see [`Engine::add_unobserved`]), so certified
//! intervals and the `(3A, A+B)` guarantee stay sound — the true count
//! of any item still lies inside its reported interval, because at most
//! `lost` occurrences went unobserved. With supervision off, the first
//! operation that trips over a dead shard reports the typed
//! [`Error::ShardDown`] and the pipeline stays usable for draining.
//!
//! ```
//! use hh_sketches::engine::{AlgoKind, EngineConfig};
//! use hh_sketches::pipeline::PipelineConfig;
//!
//! let mut pipeline = PipelineConfig::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(16))
//!     .shards(2)
//!     .spawn::<u64>()
//!     .unwrap();
//! for i in 0..1000u64 {
//!     pipeline.send(i % 7).unwrap();
//! }
//! // live query: merged snapshot at an epoch boundary, ingest continues
//! let live = pipeline.merged().unwrap();
//! assert_eq!(live.stream_len(), 1000);
//! pipeline.send_batch(&[3, 3, 3]).unwrap();
//! let merged = pipeline.finish().unwrap();
//! assert_eq!(merged.stream_len(), 1003);
//! assert_eq!(merged.report().top_k(1)[0].item, 3);
//! ```
//!
//! [`parallel_summarize`]: hh_counters::parallel::parallel_summarize

use std::hash::{BuildHasher, Hash};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::Instant;

use hh_counters::error::Error;
use hh_counters::fasthash::FxBuildHasher;
use hh_counters::merge::merge_k_sparse;
use hh_obs::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};

use crate::engine::{Engine, EngineConfig, EngineItem, Snapshot};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// How the coordinator assigns arrivals to shards.
///
/// Theorem 11's merged guarantee is partition-oblivious, so the choice
/// trades locality against balance rather than correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Each item goes to the shard `fx_hash(item) mod shards` — see
    /// [`hash_shard`]. All occurrences of an item land on one shard, so
    /// each shard summarizes a disjoint slice of the universe: per-shard
    /// counter pressure drops and a hot set of up to `shards × m`
    /// distinct items is held exactly. The default.
    #[default]
    HashPartition,
    /// Whole batches are dealt to shards in rotation. No per-item work in
    /// the router, but every shard sees the full universe.
    RoundRobin,
}

/// How a shard worker consumes a delivered batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardIngest {
    /// `update_batch` in delivery order — per-shard state is bit-identical
    /// to a sequential summary of the shard's sub-stream, which is what
    /// makes a `Preserve` pipeline exactly reproducible by
    /// [`hh_counters::parallel::parallel_summarize`] on the same
    /// partition. The default.
    #[default]
    Preserve,
    /// Pre-aggregate each batch to one `update_by` per distinct item
    /// (first-occurrence order). Equivalent to ingesting a permutation of
    /// the batch, which Theorem 11 licenses: the merged `(3A, A+B)`
    /// guarantee never conditions on arrival order. Within-shard
    /// tie-breaking may differ from `Preserve`; certified bounds and the
    /// tail guarantee do not.
    Aggregate,
}

/// Builder for a [`Pipeline`]: one [`EngineConfig`] describing every
/// shard's summary, plus the concurrency knobs.
///
/// ```
/// use hh_sketches::engine::{AlgoKind, EngineConfig};
/// use hh_sketches::pipeline::{PipelineConfig, Routing, ShardIngest};
///
/// let config = PipelineConfig::new(EngineConfig::new(AlgoKind::Frequent).counters(64))
///     .shards(4)
///     .routing(Routing::RoundRobin)
///     .ingest(ShardIngest::Aggregate)
///     .batch_size(1024)
///     .queue_depth(2);
/// assert_eq!(config.shard_count(), 4);
/// let pipeline = config.spawn::<u64>().unwrap();
/// assert_eq!(pipeline.shards(), 4);
/// pipeline.finish().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    engine: EngineConfig,
    shards: usize,
    routing: Routing,
    ingest: ShardIngest,
    batch: usize,
    queue: usize,
    supervised: bool,
}

impl PipelineConfig {
    /// Starts a pipeline config: engines per `engine`, one shard per unit
    /// of available parallelism, hash-partitioned routing,
    /// order-preserving ingest, 8192-item batches, 4 queued batches per
    /// shard, supervision on.
    ///
    /// # Invariants
    ///
    /// `shards`, `batch_size` and `queue_depth` must all be ≥ 1.
    /// [`PipelineConfig::spawn`] reports a violation as a typed
    /// [`Error::InvalidConfig`] — it never panics and never silently
    /// clamps a degenerate value.
    pub fn new(engine: EngineConfig) -> Self {
        PipelineConfig {
            engine,
            shards: hh_counters::pool::max_workers(),
            routing: Routing::default(),
            ingest: ShardIngest::default(),
            batch: 8192,
            queue: 4,
            supervised: true,
        }
    }

    /// Sets the number of worker shards (`≥ 1`).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the routing policy.
    pub fn routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }

    /// Sets how shard workers consume batches.
    pub fn ingest(mut self, ingest: ShardIngest) -> Self {
        self.ingest = ingest;
        self
    }

    /// Sets the router's flush threshold: a shard buffer is shipped once
    /// it holds this many items (`≥ 1`).
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the bounded channel capacity, in batches per shard (`≥ 1`);
    /// a full queue blocks the producer (backpressure).
    pub fn queue_depth(mut self, queue: usize) -> Self {
        self.queue = queue;
        self
    }

    /// Turns shard supervision on or off (on by default). Supervised
    /// pipelines respawn a panicked shard worker from its last
    /// epoch-boundary snapshot and account the lost mass into every
    /// merged view's certified intervals (see the [module docs](self));
    /// unsupervised pipelines surface a dead shard as the typed
    /// [`Error::ShardDown`] with `recovered: false`.
    pub fn supervised(mut self, supervised: bool) -> Self {
        self.supervised = supervised;
        self
    }

    /// The configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The per-shard [`EngineConfig`].
    pub fn engine_config(&self) -> &EngineConfig {
        &self.engine
    }

    /// Validates the config and spawns the shard workers.
    ///
    /// Fails with [`Error::InvalidConfig`] on a zero shard count, batch
    /// size or queue depth, or when the engine config itself is invalid
    /// (the error a plain [`EngineConfig::build`] would report).
    pub fn spawn<I: EngineItem>(&self) -> Result<Pipeline<I>, Error> {
        if self.shards == 0 {
            return Err(Error::invalid_config("pipeline needs at least one shard"));
        }
        if self.batch == 0 {
            return Err(Error::invalid_config("batch size must be at least 1"));
        }
        if self.queue == 0 {
            return Err(Error::invalid_config("queue depth must be at least 1"));
        }
        let metrics = PipelineMetrics::new(self.shards);
        let mut senders = Vec::with_capacity(self.shards);
        let mut workers = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            // Engines are built on the coordinator thread so config errors
            // surface here, before any thread exists.
            let engine = self.engine.build::<I>()?;
            let (tx, handle) = spawn_worker(
                engine,
                self.queue,
                self.ingest,
                metrics.shards[shard].clone(),
            );
            workers.push(handle);
            senders.push(tx);
        }
        let buffers = match self.routing {
            Routing::HashPartition => (0..self.shards)
                .map(|_| Vec::with_capacity(self.batch))
                .collect(),
            Routing::RoundRobin => vec![Vec::with_capacity(self.batch)],
        };
        Ok(Pipeline {
            config: self.clone(),
            senders,
            workers,
            buffers,
            last_snapshots: (0..self.shards).map(|_| None).collect(),
            shipped_since: vec![0; self.shards],
            lost: 0,
            rr_cursor: 0,
            routed: 0,
            epoch: 0,
            metrics,
        })
    }
}

/// The shard an item routes to under [`Routing::HashPartition`]: the
/// item's Fx hash modulo the shard count. Public because it is part of
/// the pipeline's partition contract — tests (and external shards
/// reproducing a pipeline's partition) rely on it.
///
/// ```
/// let s = hh_sketches::pipeline::hash_shard(4, &42u64);
/// assert!(s < 4);
/// assert_eq!(s, hh_sketches::pipeline::hash_shard(4, &42u64));
/// ```
pub fn hash_shard<I: Hash>(shards: usize, item: &I) -> usize {
    // Multiply-shift on the high 32 bits: the well-mixed half of the Fx
    // product (its low bits are a bijection of the key's low bits for
    // integer keys, so `hash % shards` with a power-of-two shard count
    // would route strided IDs onto a single shard).
    let high = FxBuildHasher::default().hash_one(item) >> 32;
    ((high * shards as u64) >> 32) as usize
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Shared metric handles for one shard. The router holds one clone, the
/// shard worker another; all mutations are relaxed atomics on the
/// *per-batch* paths (ship / receive), never per item — which is what
/// keeps the instrumented send hot path within noise of the bare one.
#[derive(Debug, Clone)]
struct ShardMetrics {
    /// Worker side: occurrences the shard engine has consumed.
    items_ingested: Counter,
    /// Worker side: batches consumed.
    batches_ingested: Counter,
    /// Router side: items shipped to this shard (the routing
    /// distribution; feeds the imbalance ratio).
    routed_items: Counter,
    /// Batches in flight on the shard's channel: `+1` at ship, `−1` when
    /// the worker dequeues — a live sample of backpressure.
    queue_depth: Gauge,
    /// Nanoseconds the producer spent inside `send` per shipped batch —
    /// grows when the bounded channel is full (backpressure blocking).
    send_block_ns: Histogram,
    /// Times this shard's worker was respawned after a panic.
    restarts: Counter,
}

/// All pipeline telemetry, owned by the coordinator and exposed through
/// [`Pipeline::stats`] / [`Pipeline::registry`].
#[derive(Debug)]
struct PipelineMetrics {
    registry: Registry,
    shards: Vec<ShardMetrics>,
    /// Wall time of each epoch-boundary snapshot collection.
    snapshot_ns: Histogram,
    /// Wall time of each snapshot-set merge (merged / merged_k_sparse).
    merge_ns: Histogram,
    epochs: Counter,
    /// Occurrences charged to dead shards across all restarts (the mass
    /// merged views widen their intervals by).
    lost_items: Counter,
}

impl PipelineMetrics {
    fn new(shards: usize) -> Self {
        let registry = Registry::new();
        let shard_metrics = (0..shards)
            .map(|i| {
                let shard = i.to_string();
                let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
                ShardMetrics {
                    items_ingested: registry.counter_with(
                        "hh_pipeline_shard_items_total",
                        labels,
                        "occurrences consumed by the shard worker",
                    ),
                    batches_ingested: registry.counter_with(
                        "hh_pipeline_shard_batches_total",
                        labels,
                        "batches consumed by the shard worker",
                    ),
                    routed_items: registry.counter_with(
                        "hh_pipeline_shard_routed_total",
                        labels,
                        "items the router shipped to this shard",
                    ),
                    queue_depth: registry.gauge_with(
                        "hh_pipeline_shard_queue_depth",
                        labels,
                        "batches in flight on the shard channel",
                    ),
                    send_block_ns: registry.histogram_with(
                        "hh_pipeline_send_block_ns",
                        labels,
                        "producer time inside send per shipped batch",
                    ),
                    restarts: registry.counter_with(
                        "hh_pipeline_shard_restarts_total",
                        labels,
                        "times the shard worker was respawned after a panic",
                    ),
                }
            })
            .collect();
        let snapshot_ns = registry.histogram(
            "hh_pipeline_snapshot_ns",
            "epoch-boundary snapshot collection wall time",
        );
        let merge_ns =
            registry.histogram("hh_pipeline_merge_ns", "epoch snapshot-set merge wall time");
        let epochs = registry.counter(
            "hh_pipeline_epochs_total",
            "completed epoch-boundary queries",
        );
        let lost_items = registry.counter(
            "hh_pipeline_lost_items_total",
            "occurrences charged to dead shards (widens merged intervals)",
        );
        hh_counters::pool::register_metrics(&registry);
        PipelineMetrics {
            registry,
            shards: shard_metrics,
            snapshot_ns,
            merge_ns,
            epochs,
            lost_items,
        }
    }
}

/// Point-in-time telemetry for one shard (see [`PipelineStats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index (position in routing order).
    pub shard: usize,
    /// Occurrences the shard worker has consumed so far.
    pub items_ingested: u64,
    /// Batches the shard worker has consumed so far.
    pub batches_ingested: u64,
    /// Items the router has shipped to this shard (routing distribution).
    pub routed_items: u64,
    /// Batches currently in flight on the shard's channel. A live sample:
    /// transiently `−1`/`+1` around a dequeue while ingest runs, exactly
    /// `0` right after an epoch boundary.
    pub queue_depth: i64,
    /// Distribution of producer time inside `send` per shipped batch.
    pub send_block_ns: HistogramSnapshot,
    /// Times this shard's worker was respawned after a panic.
    pub restarts: u64,
}

/// A point-in-time read-out of a running [`Pipeline`]'s telemetry,
/// returned by [`Pipeline::stats`].
///
/// Sampling is live and lock-free: values mutate while ingest runs, and
/// cross-counter identities are only exact at quiescent points. Right
/// after an epoch-boundary query ([`Pipeline::snapshots`] or any method
/// built on it), every queue is drained, so
/// `Σ shards[i].items_ingested == routed` exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStats {
    /// Items accepted by the router (mirror of [`Pipeline::routed`]).
    pub routed: u64,
    /// Completed epoch-boundary queries (mirror of [`Pipeline::epoch`]).
    pub epochs: u64,
    /// Routing imbalance: max over shards of shipped items divided by the
    /// per-shard mean. `1.0` is perfectly balanced (and the value before
    /// anything shipped); `shards as f64` means one shard took it all.
    pub imbalance: f64,
    /// Distribution of epoch-boundary snapshot collection wall time.
    pub snapshot_ns: HistogramSnapshot,
    /// Distribution of epoch snapshot-set merge wall time.
    pub merge_ns: HistogramSnapshot,
    /// Shard-worker respawns across all shards (`Σ shards[i].restarts`).
    pub restarts: u64,
    /// Occurrences charged to dead shards so far — the mass every merged
    /// view widens its `stream_len`, upper estimates and error terms by.
    /// `0` on a pipeline that never lost a worker.
    pub lost_items: u64,
    /// Per-shard telemetry, in shard order.
    pub shards: Vec<ShardStats>,
}

impl PipelineStats {
    /// Total items shipped to shards (`Σ routed_items`); trails
    /// [`PipelineStats::routed`] by whatever is still buffered in the
    /// router.
    pub fn shipped(&self) -> u64 {
        self.shards.iter().map(|s| s.routed_items).sum()
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

enum Msg<I> {
    /// A routed batch of arrivals.
    Batch(Vec<I>),
    /// Epoch marker: reply with the shard's current snapshot. FIFO
    /// channel order makes the reply reflect exactly the batches routed
    /// to this shard before the marker.
    Checkpoint(SyncSender<Snapshot<I>>),
}

/// What a shard worker hands back through its join handle: the drained
/// engine on a clean shutdown, or the panic message when the worker died.
type ShardOutcome<I> = Result<Engine<I>, String>;

fn shard_worker<I: EngineItem>(
    mut engine: Engine<I>,
    rx: Receiver<Msg<I>>,
    ingest: ShardIngest,
    metrics: ShardMetrics,
) -> Engine<I> {
    let mut aggregator = BatchAggregator::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Batch(batch) => {
                // Injection site: a crash here models a worker dying with
                // a dequeued-but-unapplied batch (free unless armed).
                hh_fault::fault_point(hh_fault::sites::SHARD_BATCH);
                metrics.queue_depth.sub(1);
                match ingest {
                    ShardIngest::Preserve => engine.update_batch(&batch),
                    ShardIngest::Aggregate => aggregator.ingest(&mut engine, &batch),
                }
                metrics.items_ingested.add(batch.len() as u64);
                metrics.batches_ingested.inc();
            }
            Msg::Checkpoint(reply) => {
                // Injection site: a crash between marker receipt and the
                // reply exercises the coordinator's phase-2 recovery.
                hh_fault::fault_point(hh_fault::sites::SHARD_CHECKPOINT);
                // A dropped reply receiver means the coordinator gave up
                // on this epoch; ingest continues regardless.
                // lint:allow(error-swallow) send fails only when the coordinator dropped the receiver, and the shard must keep ingesting
                let _ = reply.send(engine.snapshot());
            }
        }
    }
    // Channel disconnected: the coordinator is finishing (or dropped the
    // pipeline). Hand the engine back through the join handle.
    engine
}

/// Spawns one shard worker under `catch_unwind`, so a panic in a worker
/// (a backend bug, or an injected fault) is reported through the join
/// handle as an `Err(panic message)` instead of silently poisoning the
/// pipeline. `AssertUnwindSafe` is sound here: on panic the engine and
/// aggregator are dropped with the closure — supervision rebuilds state
/// from the last epoch snapshot and never observes the torn values.
fn spawn_worker<I: EngineItem>(
    engine: Engine<I>,
    queue: usize,
    ingest: ShardIngest,
    metrics: ShardMetrics,
) -> (SyncSender<Msg<I>>, JoinHandle<ShardOutcome<I>>) {
    let (tx, rx) = std::sync::mpsc::sync_channel::<Msg<I>>(queue);
    let handle = std::thread::spawn(move || {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            shard_worker(engine, rx, ingest, metrics)
        }))
        .map_err(|payload| panic_message(payload.as_ref()))
    });
    (tx, handle)
}

/// Best-effort text of a caught panic payload (`&str` and `String`
/// payloads cover `panic!`; anything else gets a fixed marker).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-batch multiset aggregation scratch for [`ShardIngest::Aggregate`]:
/// an open-addressing table mapping items to a first-occurrence-ordered
/// `(item, count)` list, cleared between batches.
struct BatchAggregator<I> {
    /// Slot → `index + 1` into `pairs`; 0 is empty.
    table: Vec<u32>,
    mask: usize,
    pairs: Vec<(I, u64)>,
    build: FxBuildHasher,
}

impl<I: EngineItem> BatchAggregator<I> {
    fn new() -> Self {
        BatchAggregator {
            table: Vec::new(),
            mask: 0,
            pairs: Vec::new(),
            build: FxBuildHasher::default(),
        }
    }

    /// Feeds `batch` into `engine` as one `update_by` per distinct item,
    /// counts aggregated, items in first-occurrence order — a fixed,
    /// deterministic permutation of the batch.
    fn ingest(&mut self, engine: &mut Engine<I>, batch: &[I]) {
        if batch.is_empty() {
            return;
        }
        // ≤ 1/2 load even if every batch item is distinct.
        let want = (batch.len() * 2).next_power_of_two().max(16);
        if self.table.len() < want {
            self.table = vec![0u32; want];
            self.mask = want - 1;
        } else {
            self.table.fill(0);
        }
        for item in batch {
            // probe with the well-mixed high half of the hash (the low
            // bits of an unmixed Fx product cluster on strided keys)
            let mut pos = (self.build.hash_one(item) >> 32) as usize & self.mask;
            loop {
                let slot = self.table[pos];
                if slot == 0 {
                    self.pairs.push((item.clone(), 1));
                    self.table[pos] = self.pairs.len() as u32;
                    break;
                }
                let idx = (slot - 1) as usize;
                if self.pairs[idx].0 == *item {
                    self.pairs[idx].1 += 1;
                    break;
                }
                pos = (pos + 1) & self.mask;
            }
        }
        for (item, count) in self.pairs.drain(..) {
            engine.update_by(item, count);
        }
    }
}

// ---------------------------------------------------------------------------
// The coordinator handle
// ---------------------------------------------------------------------------

/// A running sharded ingest service (see the [module docs](self)).
///
/// The handle is the single producer: [`Pipeline::send`] /
/// [`Pipeline::send_batch`] route arrivals, the query methods
/// ([`Pipeline::snapshots`], [`Pipeline::merged`],
/// [`Pipeline::merged_k_sparse`]) collect an epoch-consistent view while
/// ingest stays live, and [`Pipeline::finish`] drains everything and
/// returns the final merged engine.
pub struct Pipeline<I: EngineItem> {
    config: PipelineConfig,
    senders: Vec<SyncSender<Msg<I>>>,
    workers: Vec<JoinHandle<ShardOutcome<I>>>,
    /// Pending per-shard batches (`HashPartition`) or the single staging
    /// batch (`RoundRobin`).
    buffers: Vec<Vec<I>>,
    /// Supervision state: each shard's last epoch-boundary snapshot
    /// (`None` until the first epoch) — the restore point a respawned
    /// worker rebuilds from.
    last_snapshots: Vec<Option<Snapshot<I>>>,
    /// Items shipped to each shard since its snapshot in
    /// `last_snapshots` was taken — the mass charged as lost if the
    /// worker dies before the next epoch.
    shipped_since: Vec<u64>,
    /// Total occurrences charged to dead shards; folded into every
    /// merged view via [`Engine::add_unobserved`].
    lost: u64,
    rr_cursor: usize,
    routed: u64,
    epoch: u64,
    metrics: PipelineMetrics,
}

impl<I: EngineItem> std::fmt::Debug for Pipeline<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("shards", &self.senders.len())
            .field("routing", &self.config.routing)
            .field("ingest", &self.config.ingest)
            .field("routed", &self.routed)
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl<I: EngineItem> Pipeline<I> {
    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Items accepted by the router so far (buffered or shipped). After
    /// an [`Error::Pipeline`], counts exactly the items accepted before
    /// the failure.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Completed epoch-boundary queries so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Occurrences charged to dead shards so far — the mass every merged
    /// view is widened by ([`Engine::add_unobserved`]). `0` unless a
    /// supervised shard worker died and was respawned.
    pub fn lost_items(&self) -> u64 {
        self.lost
    }

    /// A live telemetry sample: per-shard ingest counters, queue depths,
    /// send-block and epoch-latency distributions, and the derived
    /// routing imbalance ratio. Non-blocking (relaxed atomic loads); see
    /// [`PipelineStats`] for which identities are exact when.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// use hh_sketches::pipeline::PipelineConfig;
    ///
    /// let mut p = PipelineConfig::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(16))
    ///     .shards(2)
    ///     .batch_size(8)
    ///     .spawn::<u64>()
    ///     .unwrap();
    /// p.send_batch(&(0..100).collect::<Vec<u64>>()).unwrap();
    /// p.merged().unwrap(); // epoch boundary: queues drained
    /// let stats = p.stats();
    /// assert_eq!(stats.routed, 100);
    /// assert_eq!(stats.shards.iter().map(|s| s.items_ingested).sum::<u64>(), 100);
    /// assert!(stats.imbalance >= 1.0);
    /// p.finish().unwrap();
    /// ```
    pub fn stats(&self) -> PipelineStats {
        let shards: Vec<ShardStats> = self
            .metrics
            .shards
            .iter()
            .enumerate()
            .map(|(i, m)| ShardStats {
                shard: i,
                items_ingested: m.items_ingested.get(),
                batches_ingested: m.batches_ingested.get(),
                routed_items: m.routed_items.get(),
                queue_depth: m.queue_depth.get(),
                send_block_ns: m.send_block_ns.snapshot(),
                restarts: m.restarts.get(),
            })
            .collect();
        let shipped: u64 = shards.iter().map(|s| s.routed_items).sum();
        let imbalance = if shipped == 0 {
            1.0
        } else {
            let max = shards.iter().map(|s| s.routed_items).max().unwrap_or(0);
            let mean = shipped as f64 / shards.len() as f64;
            max as f64 / mean
        };
        PipelineStats {
            routed: self.routed,
            epochs: self.metrics.epochs.get(),
            imbalance,
            snapshot_ns: self.metrics.snapshot_ns.snapshot(),
            merge_ns: self.metrics.merge_ns.snapshot(),
            restarts: shards.iter().map(|s| s.restarts).sum(),
            lost_items: self.lost,
            shards,
        }
    }

    /// The pipeline's metric [`Registry`] — every counter, gauge and
    /// histogram behind [`Pipeline::stats`] plus the process-wide pool
    /// counters, renderable as Prometheus text or JSON.
    ///
    /// ```
    /// # use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// # use hh_sketches::pipeline::PipelineConfig;
    /// let p = PipelineConfig::new(EngineConfig::new(AlgoKind::Frequent).counters(8))
    ///     .shards(1)
    ///     .spawn::<u64>()
    ///     .unwrap();
    /// assert!(p.registry().to_prometheus().contains("hh_pipeline_shard_items_total"));
    /// p.finish().unwrap();
    /// ```
    pub fn registry(&self) -> &Registry {
        &self.metrics.registry
    }

    /// Whether any shard's bounded channel is currently full — the next
    /// [`Pipeline::send`] routed to it would block the producer.
    ///
    /// A live, advisory sample (workers drain concurrently, so saturation
    /// can clear a microsecond later): event-driven producers like
    /// `hh-net` poll it to *pause* pulling from upstream sources instead
    /// of parking the whole event loop inside a blocking `send`, turning
    /// channel backpressure into source backpressure.
    pub fn saturated(&self) -> bool {
        let cap = self.config.queue as i64;
        self.metrics
            .shards
            .iter()
            .any(|m| m.queue_depth.get() >= cap)
    }

    /// Routes one arrival. Blocks when the destination shard's queue is
    /// full (backpressure). A dead shard worker is respawned under
    /// supervision (the default); otherwise — or if the respawn fails —
    /// the call reports [`Error::ShardDown`].
    pub fn send(&mut self, item: I) -> Result<(), Error> {
        self.routed += 1;
        match self.config.routing {
            Routing::HashPartition => {
                let shard = hash_shard(self.senders.len(), &item);
                self.buffers[shard].push(item);
                if self.buffers[shard].len() >= self.config.batch {
                    self.ship(shard)?;
                }
            }
            Routing::RoundRobin => {
                self.buffers[0].push(item);
                if self.buffers[0].len() >= self.config.batch {
                    self.ship_round_robin()?;
                }
            }
        }
        Ok(())
    }

    /// Routes a slice of arrivals in order (equivalent to
    /// [`Pipeline::send`] per element, specialized per routing policy —
    /// this is the service's ingest hot path).
    pub fn send_batch(&mut self, items: &[I]) -> Result<(), Error> {
        match self.config.routing {
            Routing::HashPartition => {
                let shards = self.senders.len();
                for item in items {
                    let shard = hash_shard(shards, item);
                    self.buffers[shard].push(item.clone());
                    self.routed += 1;
                    if self.buffers[shard].len() >= self.config.batch {
                        self.ship(shard)?;
                    }
                }
            }
            Routing::RoundRobin => {
                // whole sub-slices straight into the staging buffer
                let mut rest = items;
                while !rest.is_empty() {
                    let room = self.config.batch - self.buffers[0].len();
                    let take = room.min(rest.len());
                    self.buffers[0].extend_from_slice(&rest[..take]);
                    self.routed += take as u64;
                    rest = &rest[take..];
                    if self.buffers[0].len() >= self.config.batch {
                        self.ship_round_robin()?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Ships every buffered item to its shard, leaving the buffers empty.
    /// Called implicitly by the query methods and by [`Pipeline::finish`].
    pub fn flush(&mut self) -> Result<(), Error> {
        match self.config.routing {
            Routing::HashPartition => {
                for shard in 0..self.buffers.len() {
                    if !self.buffers[shard].is_empty() {
                        self.ship(shard)?;
                    }
                }
            }
            Routing::RoundRobin => {
                if !self.buffers[0].is_empty() {
                    self.ship_round_robin()?;
                }
            }
        }
        Ok(())
    }

    fn ship(&mut self, shard: usize) -> Result<(), Error> {
        let batch = std::mem::replace(
            &mut self.buffers[shard],
            Vec::with_capacity(self.config.batch),
        );
        self.ship_to(shard, batch)
    }

    fn ship_round_robin(&mut self) -> Result<(), Error> {
        let shard = self.rr_cursor;
        self.rr_cursor = (self.rr_cursor + 1) % self.senders.len();
        let batch = std::mem::replace(&mut self.buffers[0], Vec::with_capacity(self.config.batch));
        self.ship_to(shard, batch)
    }

    /// The single shipping point: all telemetry is per *batch* here (a
    /// counter add, a gauge bump, one timed send), so the per-item send
    /// paths above stay exactly as lean as before instrumentation. A
    /// failed send means the shard worker died: under supervision the
    /// shard is respawned from its last epoch snapshot and the batch —
    /// recovered intact from the send error — is re-shipped to the
    /// rebuilt worker, so *this* batch is never part of the lost mass.
    fn ship_to(&mut self, shard: usize, batch: Vec<I>) -> Result<(), Error> {
        let len = batch.len() as u64;
        let metrics = &self.metrics.shards[shard];
        metrics.routed_items.add(len);
        metrics.queue_depth.add(1);
        let start = Instant::now();
        let sent = self.senders[shard].send(Msg::Batch(batch));
        metrics.send_block_ns.record_duration(start.elapsed());
        match sent {
            Ok(()) => {
                self.shipped_since[shard] += len;
                Ok(())
            }
            Err(undelivered) => {
                // Never delivered: keep the in-flight gauge truthful.
                metrics.queue_depth.sub(1);
                let batch = match undelivered.0 {
                    Msg::Batch(batch) => batch,
                    // We just sent a Batch; nothing else can come back.
                    Msg::Checkpoint(_) => Vec::new(),
                };
                self.respawn(shard)?;
                self.metrics.shards[shard].queue_depth.add(1);
                match self.senders[shard].send(Msg::Batch(batch)) {
                    Ok(()) => {
                        self.shipped_since[shard] += len;
                        Ok(())
                    }
                    Err(_) => {
                        // The respawned worker died instantly (e.g. a
                        // persistent injected fault): give up loudly.
                        self.metrics.shards[shard].queue_depth.sub(1);
                        Err(Error::ShardDown {
                            shard,
                            recovered: true,
                        })
                    }
                }
            }
        }
    }

    /// Supervised recovery: reap the dead worker, charge everything
    /// shipped since its last epoch snapshot to the lost account, and
    /// respawn the shard from that snapshot (or from a fresh engine if
    /// no epoch has completed yet).
    fn respawn(&mut self, shard: usize) -> Result<(), Error> {
        if !self.config.supervised {
            return Err(Error::ShardDown {
                shard,
                recovered: false,
            });
        }
        let engine = match self.last_snapshots[shard].clone() {
            Some(snap) => Engine::from_snapshot(snap).map_err(|_| Error::ShardDown {
                shard,
                recovered: false,
            })?,
            None => self
                .config
                .engine
                .build::<I>()
                .map_err(|_| Error::ShardDown {
                    shard,
                    recovered: false,
                })?,
        };
        let (tx, handle) = spawn_worker(
            engine,
            self.config.queue,
            self.config.ingest,
            self.metrics.shards[shard].clone(),
        );
        // Push-then-swap_remove replaces slot `shard` in place and hands
        // back the dead worker's sender and handle.
        self.senders.push(tx);
        drop(self.senders.swap_remove(shard));
        self.workers.push(handle);
        let dead = self.workers.swap_remove(shard);
        // The worker already exited (that is why we are here); reap its
        // panic payload so the thread is not leaked.
        // lint:allow(error-swallow) the Err payload is the panic we are recovering from; supervision already recorded the restart
        let _ = dead.join();
        // Batches queued at the crash died with the channel; everything
        // shipped since the restore point is gone either way.
        let lost = self.shipped_since[shard];
        self.shipped_since[shard] = 0;
        self.lost = self.lost.saturating_add(lost);
        let metrics = &self.metrics.shards[shard];
        metrics.queue_depth.set(0);
        metrics.restarts.inc();
        self.metrics.lost_items.add(lost);
        Ok(())
    }

    /// Collects one snapshot per shard at an epoch boundary: every item
    /// routed before this call is reflected, no item sent after is. The
    /// pipeline keeps ingesting afterwards; the epoch counter increments.
    ///
    /// Under supervision a shard found dead here is respawned and its
    /// restored engine answers the epoch (sound: the lost mass is in the
    /// pipeline's lost account, which merged views widen by). On success
    /// the collected snapshots become the shards' new restore points.
    pub fn snapshots(&mut self) -> Result<Vec<Snapshot<I>>, Error> {
        let start = Instant::now();
        self.flush()?;
        // Phase 1: post a checkpoint marker to every shard...
        let mut replies = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            replies.push(self.post_checkpoint(shard)?);
        }
        // ...then collect, so shards drain their queues concurrently
        // instead of one at a time.
        let mut snaps = Vec::with_capacity(replies.len());
        for (shard, rx) in replies.into_iter().enumerate() {
            match rx.recv() {
                Ok(snap) => snaps.push(snap),
                Err(_) => {
                    // The shard died between the marker and its reply.
                    // Respawn it and ask the rebuilt worker: its state
                    // *is* the last restore point, exactly what this
                    // epoch can still soundly report for the shard.
                    self.respawn(shard)?;
                    let retry = self.post_checkpoint(shard)?;
                    snaps.push(retry.recv().map_err(|_| Error::ShardDown {
                        shard,
                        recovered: true,
                    })?);
                }
            }
        }
        // The epoch is the new restore point for every shard.
        if self.config.supervised {
            for (shard, snap) in snaps.iter().enumerate() {
                self.last_snapshots[shard] = Some(snap.clone());
                self.shipped_since[shard] = 0;
            }
        }
        self.epoch += 1;
        self.metrics.snapshot_ns.record_duration(start.elapsed());
        self.metrics.epochs.inc();
        Ok(snaps)
    }

    /// Posts one epoch marker to `shard`, respawning it first if the
    /// send finds it dead (one attempt — a worker that dies again
    /// immediately surfaces as [`Error::ShardDown`]).
    fn post_checkpoint(&mut self, shard: usize) -> Result<Receiver<Snapshot<I>>, Error> {
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        if self.senders[shard].send(Msg::Checkpoint(reply_tx)).is_ok() {
            return Ok(reply_rx);
        }
        self.respawn(shard)?;
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        self.senders[shard]
            .send(Msg::Checkpoint(reply_tx))
            .map_err(|_| Error::ShardDown {
                shard,
                recovered: true,
            })?;
        Ok(reply_rx)
    }

    /// The live merged view: per-shard snapshots collected at an epoch
    /// boundary and combined through [`Engine::merge_snapshot`] — full
    /// counter replay with the donors' bound bookkeeping folded in, so
    /// the returned engine's certified intervals and `stream_len` are
    /// sound for the combined stream and its [`Engine::report`] is the
    /// pipeline's live query surface. Carries the Theorem 11 `(3A, A+B)`
    /// k-tail guarantee when shards carry `(A, B)`.
    ///
    /// If shards were lost and respawned, the result is widened by the
    /// lost mass ([`Engine::add_unobserved`]): `stream_len` still counts
    /// every routed item and certified intervals still contain the true
    /// counts.
    pub fn merged(&mut self) -> Result<Engine<I>, Error> {
        let snaps = self.snapshots()?;
        let start = Instant::now();
        let merged = merge_snapshots(snaps);
        self.metrics.merge_ns.record_duration(start.elapsed());
        let mut merged = merged?;
        merged.add_unobserved(self.lost);
        Ok(merged)
    }

    /// The Theorem 11 *k-sparse* merge of an epoch-boundary view: each
    /// shard contributes only its k-sparse recovery, exactly the
    /// construction of
    /// [`hh_counters::parallel::parallel_summarize`]. With
    /// [`ShardIngest::Preserve`], the result is bit-identical to
    /// `parallel_summarize(partition, k, …)` on the partition this
    /// pipeline's routing produced.
    pub fn merged_k_sparse(&mut self, k: usize) -> Result<Engine<I>, Error> {
        let snaps = self.snapshots()?;
        let start = Instant::now();
        let mut shards = Vec::with_capacity(snaps.len());
        for snap in snaps {
            shards.push(Engine::from_snapshot(snap)?);
        }
        let target = self.config.engine.build::<I>()?;
        let mut merged = merge_k_sparse(&shards, k, move || target);
        self.metrics.merge_ns.record_duration(start.elapsed());
        merged.add_unobserved(self.lost);
        Ok(merged)
    }

    /// Per-shard engines reconstructed from an epoch-boundary snapshot
    /// set, in shard order — the raw material for custom merges.
    pub fn shard_engines(&mut self) -> Result<Vec<Engine<I>>, Error> {
        self.snapshots()?
            .into_iter()
            .map(Engine::from_snapshot)
            .collect()
    }

    /// Drains every buffer, stops the workers, and returns the final
    /// merged engine (same merge as [`Pipeline::merged`], including the
    /// lost-mass widening if shards were ever respawned).
    pub fn finish(mut self) -> Result<Engine<I>, Error> {
        let (engines, lost) = self.drain_shards()?;
        let mut engines = engines.into_iter();
        // lint:allow(panic-freedom) unreachable: PipelineConfig::spawn rejects shards == 0, and drain_shards returns exactly one engine per shard
        let mut merged = engines.next().expect("spawn enforces at least one shard");
        for engine in engines {
            merged.merge(&engine)?;
        }
        merged.add_unobserved(lost);
        Ok(merged)
    }

    /// Drains every buffer, stops the workers, and returns the per-shard
    /// engines in shard order. A shard found dead at the drain is
    /// replaced by its last restore point under supervision (the caller
    /// can read the charged loss off [`Pipeline::stats`] beforehand —
    /// after this the pipeline is consumed).
    pub fn finish_shards(mut self) -> Result<Vec<Engine<I>>, Error> {
        self.drain_shards().map(|(engines, _)| engines)
    }

    /// The common drain: disconnect every channel, join every worker,
    /// and turn panicked workers into restored engines (supervised) or a
    /// typed [`Error::ShardDown`] (unsupervised). Returns the engines
    /// plus the pipeline's total lost mass.
    fn drain_shards(&mut self) -> Result<(Vec<Engine<I>>, u64), Error> {
        self.flush()?;
        // Dropping the senders disconnects the channels; workers drain
        // what is queued and return their engines.
        self.senders.clear();
        let mut engines = Vec::with_capacity(self.workers.len());
        for (shard, handle) in self.workers.drain(..).enumerate() {
            let outcome = handle
                .join()
                .unwrap_or_else(|payload| Err(panic_message(payload.as_ref())));
            match outcome {
                Ok(engine) => engines.push(engine),
                Err(_panic) => {
                    if !self.config.supervised {
                        return Err(Error::ShardDown {
                            shard,
                            recovered: false,
                        });
                    }
                    // The worker died somewhere before the drain: fall
                    // back to its restore point and charge the rest.
                    let engine = match self.last_snapshots[shard].take() {
                        Some(snap) => {
                            Engine::from_snapshot(snap).map_err(|_| Error::ShardDown {
                                shard,
                                recovered: false,
                            })?
                        }
                        None => self
                            .config
                            .engine
                            .build::<I>()
                            .map_err(|_| Error::ShardDown {
                                shard,
                                recovered: false,
                            })?,
                    };
                    let lost = self.shipped_since[shard];
                    self.shipped_since[shard] = 0;
                    self.lost = self.lost.saturating_add(lost);
                    let metrics = &self.metrics.shards[shard];
                    metrics.queue_depth.set(0);
                    metrics.restarts.inc();
                    self.metrics.lost_items.add(lost);
                    engines.push(engine);
                }
            }
        }
        Ok((engines, self.lost))
    }
}

/// Folds a snapshot set into one engine via the snapshot-merge path.
fn merge_snapshots<I: EngineItem>(snaps: Vec<Snapshot<I>>) -> Result<Engine<I>, Error> {
    let mut snaps = snaps.into_iter();
    let first = snaps
        .next()
        .ok_or_else(|| Error::pipeline("no shard snapshots to merge"))?;
    let mut merged = Engine::from_snapshot(first)?;
    for snap in snaps {
        merged.merge_snapshot(&snap)?;
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AlgoKind;
    use hh_counters::traits::FrequencyEstimator;

    fn stream(len: u64, modulus: u64) -> Vec<u64> {
        (0..len).map(|i| (i * i + 11 * i) % modulus).collect()
    }

    fn ss_config(m: usize) -> PipelineConfig {
        PipelineConfig::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(m))
    }

    #[test]
    fn spawn_validates_config() {
        assert!(ss_config(8).shards(0).spawn::<u64>().is_err());
        assert!(ss_config(8).batch_size(0).spawn::<u64>().is_err());
        assert!(ss_config(8).queue_depth(0).spawn::<u64>().is_err());
        assert!(ss_config(0).shards(2).spawn::<u64>().is_err()); // engine config error
    }

    #[test]
    fn saturated_is_false_at_quiescent_points() {
        let mut p = ss_config(64)
            .shards(2)
            .batch_size(4)
            .queue_depth(1)
            .spawn::<u64>()
            .unwrap();
        assert!(!p.saturated(), "fresh pipeline has empty queues");
        p.send_batch(&stream(1_000, 97)).unwrap();
        // An epoch boundary drains every queue; the advisory sample must
        // read empty again.
        p.merged().unwrap();
        assert!(!p.saturated(), "queues drained at the epoch boundary");
        p.finish().unwrap();
    }

    #[test]
    fn merged_counts_the_whole_stream_for_every_mode() {
        let s = stream(20_000, 997);
        for routing in [Routing::HashPartition, Routing::RoundRobin] {
            for ingest in [ShardIngest::Preserve, ShardIngest::Aggregate] {
                let mut p = ss_config(64)
                    .shards(3)
                    .routing(routing)
                    .ingest(ingest)
                    .batch_size(512)
                    .spawn::<u64>()
                    .unwrap();
                p.send_batch(&s).unwrap();
                let merged = p.finish().unwrap();
                assert_eq!(merged.stream_len(), 20_000, "{routing:?}/{ingest:?}");
                assert!(merged.stored_len() <= 64);
            }
        }
    }

    #[test]
    fn live_queries_are_epoch_consistent_and_nondestructive() {
        let mut p = ss_config(32)
            .shards(4)
            .batch_size(64)
            .spawn::<u64>()
            .unwrap();
        p.send_batch(&stream(5_000, 37)).unwrap();
        let first = p.merged().unwrap();
        assert_eq!(first.stream_len(), 5_000);
        assert_eq!(p.epoch(), 1);

        // ingest continues; the next epoch sees strictly more
        p.send_batch(&stream(2_500, 37)).unwrap();
        let second = p.merged().unwrap();
        assert_eq!(second.stream_len(), 7_500);
        assert_eq!(p.epoch(), 2);

        let fin = p.finish().unwrap();
        assert_eq!(fin.stream_len(), 7_500);
    }

    #[test]
    fn hash_partition_sends_all_occurrences_to_one_shard() {
        let s = stream(8_000, 101);
        let mut p = ss_config(128)
            .shards(4)
            .batch_size(256)
            .spawn::<u64>()
            .unwrap();
        p.send_batch(&s).unwrap();
        let shards = p.finish_shards().unwrap();
        // every item is fully counted on exactly its hash shard
        for item in 0..101u64 {
            let exact = s.iter().filter(|&&x| x == item).count() as u64;
            if exact == 0 {
                continue;
            }
            let home = hash_shard(4, &item);
            assert_eq!(shards[home].estimate(&item), exact, "item {item}");
            for (j, shard) in shards.iter().enumerate() {
                if j != home {
                    assert_eq!(shard.estimate(&item), 0, "item {item} leaked to shard {j}");
                }
            }
        }
    }

    #[test]
    fn round_robin_deals_whole_batches_in_rotation() {
        // batch=3, 2 shards: batches alternate 0, 1, 0, 1...
        let mut p = ss_config(16)
            .shards(2)
            .routing(Routing::RoundRobin)
            .batch_size(3)
            .spawn::<u64>()
            .unwrap();
        p.send_batch(&[1, 1, 1, 2, 2, 2, 3, 3, 3]).unwrap();
        let shards = p.finish_shards().unwrap();
        assert_eq!(shards[0].estimate(&1), 3);
        assert_eq!(shards[0].estimate(&3), 3);
        assert_eq!(shards[1].estimate(&2), 3);
        assert_eq!(shards[0].estimate(&2), 0);
    }

    #[test]
    fn preserve_mode_matches_parallel_summarize_bit_for_bit() {
        use hh_counters::parallel::parallel_summarize;
        use hh_counters::SpaceSaving;

        let s = stream(30_000, 499);
        let (shards, m, k) = (4usize, 48usize, 6usize);
        let mut p = ss_config(m)
            .shards(shards)
            .batch_size(777)
            .spawn::<u64>()
            .unwrap();
        p.send_batch(&s).unwrap();
        let via_pipeline = p.merged_k_sparse(k).unwrap();

        // reconstruct the partition from the public routing contract
        let mut partition = vec![Vec::new(); shards];
        for &x in &s {
            partition[hash_shard(shards, &x)].push(x);
        }
        let via_parallel = parallel_summarize(
            &partition,
            k,
            || SpaceSaving::<u64>::new(m),
            || SpaceSaving::<u64>::new(m),
        );
        assert_eq!(via_pipeline.entries(), via_parallel.entries());
        assert_eq!(via_pipeline.stream_len(), via_parallel.stream_len());
    }

    #[test]
    fn aggregate_mode_is_deterministic_and_exact_below_capacity() {
        let s = stream(12_000, 61); // 61 distinct < m: summaries stay exact
        let run = || {
            let mut p = ss_config(128)
                .shards(3)
                .ingest(ShardIngest::Aggregate)
                .batch_size(100)
                .spawn::<u64>()
                .unwrap();
            p.send_batch(&s).unwrap();
            p.finish().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.entries(), b.entries(), "two identical runs must agree");
        for item in 0..61u64 {
            let exact = s.iter().filter(|&&x| x == item).count() as u64;
            assert_eq!(a.estimate(&item), exact, "item {item}");
        }
    }

    #[test]
    fn aggregate_matches_preserve_on_commutative_backends() {
        // Count-Min cell updates are linear, so batch aggregation is
        // invisible to the sketch: point estimates must agree exactly.
        let s = stream(9_000, 211);
        let run = |ingest| {
            let mut p =
                PipelineConfig::new(EngineConfig::new(AlgoKind::CountMin).counters(256).seed(3))
                    .shards(2)
                    .ingest(ingest)
                    .batch_size(128)
                    .spawn::<u64>()
                    .unwrap();
            p.send_batch(&s).unwrap();
            p.finish().unwrap()
        };
        let preserve = run(ShardIngest::Preserve);
        let aggregate = run(ShardIngest::Aggregate);
        for item in 0..211u64 {
            assert_eq!(
                preserve.estimate(&item),
                aggregate.estimate(&item),
                "item {item}"
            );
        }
    }

    #[test]
    fn every_algo_runs_through_the_pipeline() {
        let s = stream(4_000, 53);
        for algo in AlgoKind::ALL {
            let mut p = PipelineConfig::new(EngineConfig::new(algo).counters(64).seed(5))
                .shards(2)
                .batch_size(256)
                .spawn::<u64>()
                .unwrap();
            p.send_batch(&s).unwrap();
            let merged = p.finish().unwrap();
            assert_eq!(merged.stream_len(), 4_000, "{algo}");
            assert!(!merged.report().top_k(3).is_empty(), "{algo}");
        }
    }

    #[test]
    fn string_items_route_and_merge() {
        let words = ["the", "cat", "sat", "the", "mat", "the"];
        let mut p = PipelineConfig::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(8))
            .shards(2)
            .batch_size(2)
            .spawn::<String>()
            .unwrap();
        for w in words {
            p.send(w.to_string()).unwrap();
        }
        let merged = p.finish().unwrap();
        assert_eq!(merged.estimate(&"the".to_string()), 3);
        assert_eq!(merged.stream_len(), 6);
    }

    #[test]
    fn stats_are_exact_at_epoch_boundaries() {
        let s = stream(10_000, 313);
        let mut p = ss_config(64)
            .shards(3)
            .batch_size(128)
            .spawn::<u64>()
            .unwrap();
        p.send_batch(&s).unwrap();
        p.merged().unwrap();

        let stats = p.stats();
        assert_eq!(stats.routed, 10_000);
        assert_eq!(stats.epochs, 1);
        assert_eq!(stats.shipped(), 10_000, "epoch boundary flushes buffers");
        let ingested: u64 = stats.shards.iter().map(|s| s.items_ingested).sum();
        assert_eq!(ingested, 10_000, "checkpoint implies queues drained");
        for shard in &stats.shards {
            assert_eq!(shard.queue_depth, 0, "shard {} not drained", shard.shard);
            assert_eq!(shard.items_ingested, shard.routed_items);
            assert_eq!(shard.send_block_ns.count, shard.batches_ingested);
        }
        assert!(stats.imbalance >= 1.0 && stats.imbalance <= 3.0);
        assert_eq!(stats.snapshot_ns.count, 1);
        assert_eq!(stats.merge_ns.count, 1);
        p.finish().unwrap();
    }

    #[test]
    fn round_robin_stats_are_balanced() {
        let mut p = ss_config(16)
            .shards(2)
            .routing(Routing::RoundRobin)
            .batch_size(10)
            .spawn::<u64>()
            .unwrap();
        p.send_batch(&(0..1000).collect::<Vec<u64>>()).unwrap();
        p.snapshots().unwrap();
        let stats = p.stats();
        // 100 batches dealt alternately: 50 per shard, perfectly balanced
        assert!((stats.imbalance - 1.0).abs() < 1e-9, "{}", stats.imbalance);
        for shard in &stats.shards {
            assert_eq!(shard.routed_items, 500);
            assert_eq!(shard.batches_ingested, 50);
        }
        p.finish().unwrap();
    }

    #[test]
    fn registry_exposes_pipeline_and_pool_metrics() {
        let mut p = ss_config(8)
            .shards(2)
            .batch_size(16)
            .spawn::<u64>()
            .unwrap();
        p.send_batch(&(0..64).collect::<Vec<u64>>()).unwrap();
        p.snapshots().unwrap();
        let text = p.registry().to_prometheus();
        for family in [
            "hh_pipeline_shard_items_total",
            "hh_pipeline_shard_queue_depth",
            "hh_pipeline_send_block_ns",
            "hh_pipeline_snapshot_ns",
            "hh_pipeline_epochs_total",
            "hh_pipeline_shard_restarts_total",
            "hh_pipeline_lost_items_total",
            "hh_pool_tasks_total",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        let json = p.registry().to_json();
        assert!(json.contains("\"hh_pipeline_epochs_total\""));
        p.finish().unwrap();
    }

    #[test]
    fn dropping_a_pipeline_does_not_hang() {
        let mut p = ss_config(8).shards(2).batch_size(4).spawn::<u64>().unwrap();
        p.send_batch(&[1, 2, 3]).unwrap();
        drop(p); // workers exit on disconnect; nothing to join
    }

    #[test]
    fn healthy_pipelines_report_no_restarts_or_loss() {
        // Supervision is on by default and must be invisible while no
        // shard dies: zero restarts, zero lost mass, exact stream_len.
        let mut p = ss_config(32)
            .shards(2)
            .batch_size(64)
            .spawn::<u64>()
            .unwrap();
        p.send_batch(&stream(3_000, 71)).unwrap();
        p.merged().unwrap();
        let stats = p.stats();
        assert_eq!(stats.restarts, 0);
        assert_eq!(stats.lost_items, 0);
        assert_eq!(p.lost_items(), 0);
        for shard in &stats.shards {
            assert_eq!(shard.restarts, 0);
        }
        let merged = p.finish().unwrap();
        assert_eq!(merged.stream_len(), 3_000);
        assert_eq!(merged.unobserved(), 0);
    }

    #[test]
    fn supervised_builder_knob_round_trips() {
        let on = ss_config(8);
        assert!(on.supervised);
        let off = ss_config(8).supervised(false);
        assert!(!off.supervised);
        // an unsupervised pipeline still runs fine while healthy
        let mut p = off.shards(2).spawn::<u64>().unwrap();
        p.send_batch(&[1, 2, 3, 4]).unwrap();
        assert_eq!(p.finish().unwrap().stream_len(), 4);
    }
}
