//! The Count-Min sketch (Cormode & Muthukrishnan), the randomized
//! comparator from Table 1 with guarantee `|f_i − f̂_i| ≤ ε/k · F1^res(k)`
//! using `O((k/ε)·log n)` counters.
//!
//! `d` rows of `w` counters; each row has an independent pairwise hash.
//! Point estimates take the minimum over rows and never underestimate.
//! A *conservative update* variant is included (same guarantees, smaller
//! error in practice) as it is the strongest practical form of the sketch —
//! the counter-vs-sketch experiment compares against both.

use std::hash::Hash;

use hh_counters::error::Error;
use hh_counters::traits::{for_each_aggregated, for_each_run, Bias, FrequencyEstimator};

use crate::hash::{item_key, RowHashes};

/// Update discipline for [`CountMin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateRule {
    /// Classic: add the increment to every row's cell.
    Classic,
    /// Conservative: raise each cell only up to `min + increment`
    /// (Estan–Varghese). Strictly tighter estimates, still never
    /// underestimates.
    Conservative,
}

/// Count-Min sketch over items hashable to `u64` keys.
///
/// The `d × w` table is one contiguous row-major allocation with
/// precomputed per-row base offsets, and the row hashes live in one flat
/// coefficient array ([`RowHashes`]) — an update hashes all rows up front
/// and then touches cells with no intervening pointer chases.
#[derive(Debug, Clone)]
pub struct CountMin<I> {
    rows: RowHashes,
    table: Vec<u64>, // d × w, row-major
    /// Precomputed row base offsets into `table` (`r * width`).
    row_base: Vec<usize>,
    /// Reused per-update cell-index buffer (conservative updates need the
    /// min over all rows before writing any cell).
    idx_scratch: Vec<usize>,
    /// Reused batched-ingest aggregation buffer of `(key, count)` pairs.
    agg_scratch: Vec<(u64, u64)>,
    width: usize,
    rule: UpdateRule,
    seed: u64,
    stream_len: u64,
    _marker: std::marker::PhantomData<fn(&I)>,
}

impl<I: Eq + Hash + Clone> CountMin<I> {
    /// Creates a sketch with `depth` rows × `width` columns, seeded.
    pub fn new(depth: usize, width: usize, seed: u64, rule: UpdateRule) -> Self {
        assert!(depth >= 1 && width >= 1);
        let rows = RowHashes::new(depth, |r| seed.wrapping_add(0x9E37 * (r as u64 + 1)));
        CountMin {
            rows,
            table: vec![0; depth * width],
            row_base: (0..depth).map(|r| r * width).collect(),
            idx_scratch: Vec::with_capacity(depth),
            agg_scratch: Vec::new(),
            width,
            rule,
            seed,
            stream_len: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Standard `(ε, δ)` sizing: `w = ⌈e/ε⌉`, `d = ⌈ln(1/δ)⌉`.
    pub fn with_error(epsilon: f64, delta: f64, seed: u64, rule: UpdateRule) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(depth, width, seed, rule)
    }

    /// Builds the widest sketch with `depth` rows that fits in a budget of
    /// `total_counters` cells — the constructor the equal-space comparison
    /// experiments use.
    pub fn with_budget(total_counters: usize, depth: usize, seed: u64, rule: UpdateRule) -> Self {
        assert!(total_counters >= depth);
        Self::new(depth, total_counters / depth, seed, rule)
    }

    /// Number of rows `d`.
    pub fn depth(&self) -> usize {
        self.rows.depth()
    }

    /// Number of columns `w`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The seed the row hashes were derived from (snapshot capture; two
    /// sketches agree on cell positions iff their seeds and shapes agree).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The update discipline.
    pub fn rule(&self) -> UpdateRule {
        self.rule
    }

    /// The raw `d × w` cell table, row-major (snapshot capture).
    pub fn cells(&self) -> &[u64] {
        &self.table
    }

    /// Rebuilds a sketch from snapshot parts. The hash functions are
    /// re-derived from `seed`, so the restored sketch answers every query
    /// identically to the captured one.
    ///
    /// Returns [`Error::CorruptSnapshot`] when `cells` does not have
    /// exactly `depth × width` entries or a dimension is zero.
    pub fn from_parts(
        depth: usize,
        width: usize,
        seed: u64,
        rule: UpdateRule,
        stream_len: u64,
        cells: Vec<u64>,
    ) -> Result<Self, Error> {
        if depth == 0 || width == 0 {
            return Err(Error::corrupt_snapshot("depth and width must be positive"));
        }
        if cells.len() != depth * width {
            return Err(Error::corrupt_snapshot(format!(
                "expected {} cells for a {depth}x{width} sketch, got {}",
                depth * width,
                cells.len()
            )));
        }
        let mut s = Self::new(depth, width, seed, rule);
        s.table = cells;
        s.stream_len = stream_len;
        Ok(s)
    }

    /// Cell-wise merge: adds `other`'s counts into `self`. Sound for both
    /// update rules (for conservative updates the merged estimates remain
    /// upper bounds, though no longer identical to single-stream CU).
    ///
    /// Returns [`Error::SnapshotMismatch`] unless shape, seed and rule all
    /// agree — merging differently-hashed sketches is meaningless.
    pub fn merge_from(&mut self, other: &CountMin<I>) -> Result<(), Error> {
        if self.depth() != other.depth()
            || self.width != other.width
            || self.seed != other.seed
            || self.rule != other.rule
        {
            return Err(Error::SnapshotMismatch {
                expected: format!(
                    "CountMin {}x{} seed {} {:?}",
                    self.depth(),
                    self.width,
                    self.seed,
                    self.rule
                ),
                found: format!(
                    "CountMin {}x{} seed {} {:?}",
                    other.depth(),
                    other.width,
                    other.seed,
                    other.rule
                ),
            });
        }
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a += b;
        }
        self.stream_len += other.stream_len;
        Ok(())
    }

    #[inline]
    fn cell_index(&self, row: usize, key: u64) -> usize {
        self.row_base[row] + self.rows.bucket(row, key, self.width)
    }

    /// One update of `count` occurrences for a pre-hashed key (shared by
    /// [`FrequencyEstimator::update_by`] and the batched fast path). All
    /// row hashes are evaluated up front into a reused index buffer, then
    /// the cells are touched in one sweep.
    // lint:hot-path
    fn add_key(&mut self, key: u64, count: u64) {
        self.stream_len += count;
        self.idx_scratch.clear();
        for r in 0..self.rows.depth() {
            let idx = self.row_base[r] + self.rows.bucket(r, key, self.width);
            self.idx_scratch.push(idx);
        }
        match self.rule {
            UpdateRule::Classic => {
                for &idx in &self.idx_scratch {
                    self.table[idx] += count;
                }
            }
            UpdateRule::Conservative => {
                let est = self
                    .idx_scratch
                    .iter()
                    .map(|&idx| self.table[idx])
                    .min()
                    // lint:allow(panic-freedom) unreachable: constructors reject depth 0, so every estimate scans at least one row
                    .expect("at least one row");
                let target = est + count;
                for &idx in &self.idx_scratch {
                    if self.table[idx] < target {
                        self.table[idx] = target;
                    }
                }
            }
        }
    }
}

impl<I: Eq + Hash + Clone> FrequencyEstimator<I> for CountMin<I> {
    fn name(&self) -> &'static str {
        match self.rule {
            UpdateRule::Classic => "CountMin",
            UpdateRule::Conservative => "CountMin(CU)",
        }
    }

    /// Total number of counter cells `d·w` (the sketch's space in words,
    /// comparable to a counter algorithm's `m` — the paper's Table 1 space
    /// column).
    fn capacity(&self) -> usize {
        self.table.len()
    }

    fn update_by(&mut self, item: I, count: u64) {
        if count == 0 {
            return;
        }
        self.add_key(item_key(&item), count);
    }

    /// Batched ingest.
    ///
    /// *Classic* updates are purely additive, so the whole batch is
    /// pre-aggregated first: run-length collapse into `(key, count)` pairs
    /// in a reused scratch buffer, sort by key, merge, then apply one
    /// weighted `d`-row sweep per *distinct* key — on skewed streams this
    /// turns most of the `depth × len` cell touches into sequential work
    /// over far fewer keys, with identical final state.
    ///
    /// *Conservative* updates are order-sensitive across distinct items, so
    /// only adjacent runs are collapsed (a run of `r` equal arrivals raises
    /// each cell to `min + r` exactly as one `+r` update does), which keeps
    /// the path exactly equivalent to the per-element loop.
    // lint:hot-path
    fn update_batch(&mut self, items: &[I]) {
        match self.rule {
            UpdateRule::Classic => {
                let mut agg = std::mem::take(&mut self.agg_scratch);
                agg.clear();
                for_each_run(items, |item, run| agg.push((item_key(item), run)));
                for_each_aggregated(&mut agg, |key, count| self.add_key(key, count));
                self.agg_scratch = agg;
            }
            UpdateRule::Conservative => {
                for_each_run(items, |item, run| self.add_key(item_key(item), run));
            }
        }
    }

    fn estimate(&self, item: &I) -> u64 {
        let key = item_key(item);
        (0..self.rows.depth())
            .map(|r| self.table[self.cell_index(r, key)])
            .min()
            // lint:allow(panic-freedom) unreachable: constructors reject depth 0, so every estimate scans at least one row
            .expect("at least one row")
    }

    /// Sketches do not store items.
    fn stored_len(&self) -> usize {
        0
    }

    /// Sketches cannot enumerate items; use
    /// [`crate::topk_tracker::SketchHeavyHitters`] to track candidates.
    fn entries(&self) -> Vec<(I, u64)> {
        Vec::new()
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::Over
    }

    /// Classic updates are additive, hence invariant under reordering and
    /// aggregation; conservative updates are order-sensitive across
    /// distinct items.
    fn updates_commute(&self) -> bool {
        self.rule == UpdateRule::Classic
    }

    /// Count-Min estimates are upper bounds for *every* item (stored or
    /// not), so the estimate itself is the tightest upper bound available.
    fn upper_estimate(&self, item: &I) -> u64 {
        self.estimate(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: UpdateRule, stream: &[u64], d: usize, w: usize) -> CountMin<u64> {
        let mut cm = CountMin::new(d, w, 42, rule);
        for &x in stream {
            cm.update(x);
        }
        cm
    }

    #[test]
    fn never_underestimates() {
        let stream: Vec<u64> = (0..5000).map(|i| i % 137).collect();
        for rule in [UpdateRule::Classic, UpdateRule::Conservative] {
            let cm = run(rule, &stream, 4, 64);
            for i in 0..137u64 {
                let exact = stream.iter().filter(|&&x| x == i).count() as u64;
                assert!(cm.estimate(&i) >= exact, "{rule:?} item {i}");
            }
        }
    }

    #[test]
    fn exact_when_width_huge() {
        let stream = [1u64, 1, 2, 3, 3, 3];
        let cm = run(UpdateRule::Classic, &stream, 4, 1 << 14);
        assert_eq!(cm.estimate(&1), 2);
        assert_eq!(cm.estimate(&2), 1);
        assert_eq!(cm.estimate(&3), 3);
        assert_eq!(cm.estimate(&99), 0);
    }

    #[test]
    fn error_within_classic_bound_whp() {
        // |err| <= e/w * F1 with prob >= 1 - e^-d per item
        let stream: Vec<u64> = (0..20_000).map(|i| (i * 31) % 997).collect();
        let w = 256;
        let cm = run(UpdateRule::Classic, &stream, 5, w);
        let bound = (std::f64::consts::E / w as f64 * stream.len() as f64).ceil() as u64;
        let mut failures = 0;
        for i in 0..997u64 {
            let exact = stream.iter().filter(|&&x| x == i).count() as u64;
            if cm.estimate(&i) - exact > bound {
                failures += 1;
            }
        }
        assert!(failures <= 2, "{failures} items beyond the CM bound");
    }

    #[test]
    fn conservative_never_worse_than_classic() {
        let stream: Vec<u64> = (0..10_000).map(|i| (i * i) % 499).collect();
        let classic = run(UpdateRule::Classic, &stream, 4, 128);
        let cons = run(UpdateRule::Conservative, &stream, 4, 128);
        for i in 0..499u64 {
            assert!(cons.estimate(&i) <= classic.estimate(&i), "item {i}");
        }
    }

    #[test]
    fn with_budget_uses_all_cells() {
        let cm: CountMin<u64> = CountMin::with_budget(1000, 4, 0, UpdateRule::Classic);
        assert_eq!(cm.depth(), 4);
        assert_eq!(cm.width(), 250);
        assert_eq!(cm.capacity(), 1000);
    }

    #[test]
    fn update_by_matches_unit_updates() {
        let mut a: CountMin<u64> = CountMin::new(3, 32, 7, UpdateRule::Classic);
        let mut b: CountMin<u64> = CountMin::new(3, 32, 7, UpdateRule::Classic);
        for (i, c) in [(3u64, 4u64), (5, 2), (3, 1)] {
            a.update_by(i, c);
            for _ in 0..c {
                b.update(i);
            }
        }
        for i in 0..10u64 {
            assert_eq!(a.estimate(&i), b.estimate(&i));
        }
    }

    #[test]
    fn update_batch_matches_unit_updates_both_rules() {
        let stream: Vec<u64> = (0..3000)
            .flat_map(|i| std::iter::repeat_n(i % 29, (i % 5 + 1) as usize))
            .collect();
        for rule in [UpdateRule::Classic, UpdateRule::Conservative] {
            let mut batched: CountMin<u64> = CountMin::new(4, 64, 9, rule);
            batched.update_batch(&stream);
            let unit = run(rule, &stream, 4, 64);
            assert_eq!(batched.stream_len(), unit.stream_len());
            for i in 0..29u64 {
                assert_eq!(batched.estimate(&i), unit.estimate(&i), "{rule:?} item {i}");
            }
        }
    }

    #[test]
    fn from_parts_roundtrip() {
        let cm = run(
            UpdateRule::Conservative,
            &(0..500u64).collect::<Vec<_>>(),
            4,
            32,
        );
        let back = CountMin::<u64>::from_parts(
            cm.depth(),
            cm.width(),
            cm.seed(),
            cm.rule(),
            cm.stream_len(),
            cm.cells().to_vec(),
        )
        .expect("valid parts");
        for i in 0..500u64 {
            assert_eq!(back.estimate(&i), cm.estimate(&i));
        }
        assert!(CountMin::<u64>::from_parts(4, 32, 0, UpdateRule::Classic, 0, vec![0; 7]).is_err());
    }

    #[test]
    fn merge_adds_cell_wise_and_rejects_mismatch() {
        let mut a = run(UpdateRule::Classic, &[1u64, 2, 3, 1], 4, 64);
        let b = run(UpdateRule::Classic, &[1u64, 4], 4, 64);
        a.merge_from(&b).expect("same shape");
        assert_eq!(a.stream_len(), 6);
        assert!(a.estimate(&1) >= 3);
        let other_seed: CountMin<u64> = CountMin::new(4, 64, 99, UpdateRule::Classic);
        assert!(a.merge_from(&other_seed).is_err());
    }
}
