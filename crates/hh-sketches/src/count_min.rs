//! The Count-Min sketch (Cormode & Muthukrishnan), the randomized
//! comparator from Table 1 with guarantee `|f_i − f̂_i| ≤ ε/k · F1^res(k)`
//! using `O((k/ε)·log n)` counters.
//!
//! `d` rows of `w` counters; each row has an independent pairwise hash.
//! Point estimates take the minimum over rows and never underestimate.
//! A *conservative update* variant is included (same guarantees, smaller
//! error in practice) as it is the strongest practical form of the sketch —
//! the counter-vs-sketch experiment compares against both.

use std::hash::Hash;

use hh_counters::traits::{Bias, FrequencyEstimator};

use crate::hash::{item_key, PolyHash};

/// Update discipline for [`CountMin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateRule {
    /// Classic: add the increment to every row's cell.
    Classic,
    /// Conservative: raise each cell only up to `min + increment`
    /// (Estan–Varghese). Strictly tighter estimates, still never
    /// underestimates.
    Conservative,
}

/// Count-Min sketch over items hashable to `u64` keys.
#[derive(Debug, Clone)]
pub struct CountMin<I> {
    rows: Vec<PolyHash>,
    table: Vec<u64>, // d × w, row-major
    width: usize,
    rule: UpdateRule,
    stream_len: u64,
    _marker: std::marker::PhantomData<fn(&I)>,
}

impl<I: Eq + Hash + Clone> CountMin<I> {
    /// Creates a sketch with `depth` rows × `width` columns, seeded.
    pub fn new(depth: usize, width: usize, seed: u64, rule: UpdateRule) -> Self {
        assert!(depth >= 1 && width >= 1);
        let rows = (0..depth)
            .map(|r| PolyHash::new(2, seed.wrapping_add(0x9E37 * (r as u64 + 1))))
            .collect();
        CountMin {
            rows,
            table: vec![0; depth * width],
            width,
            rule,
            stream_len: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Standard `(ε, δ)` sizing: `w = ⌈e/ε⌉`, `d = ⌈ln(1/δ)⌉`.
    pub fn with_error(epsilon: f64, delta: f64, seed: u64, rule: UpdateRule) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(depth, width, seed, rule)
    }

    /// Builds the widest sketch with `depth` rows that fits in a budget of
    /// `total_counters` cells — the constructor the equal-space comparison
    /// experiments use.
    pub fn with_budget(total_counters: usize, depth: usize, seed: u64, rule: UpdateRule) -> Self {
        assert!(total_counters >= depth);
        Self::new(depth, total_counters / depth, seed, rule)
    }

    /// Number of rows `d`.
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns `w`.
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    fn cell_index(&self, row: usize, key: u64) -> usize {
        row * self.width + self.rows[row].bucket(key, self.width)
    }
}

impl<I: Eq + Hash + Clone> FrequencyEstimator<I> for CountMin<I> {
    fn name(&self) -> &'static str {
        match self.rule {
            UpdateRule::Classic => "CountMin",
            UpdateRule::Conservative => "CountMin(CU)",
        }
    }

    /// Total number of counter cells `d·w` (the sketch's space in words,
    /// comparable to a counter algorithm's `m` — the paper's Table 1 space
    /// column).
    fn capacity(&self) -> usize {
        self.table.len()
    }

    fn update_by(&mut self, item: I, count: u64) {
        if count == 0 {
            return;
        }
        self.stream_len += count;
        let key = item_key(&item);
        match self.rule {
            UpdateRule::Classic => {
                for r in 0..self.rows.len() {
                    let idx = self.cell_index(r, key);
                    self.table[idx] += count;
                }
            }
            UpdateRule::Conservative => {
                let est = (0..self.rows.len())
                    .map(|r| self.table[self.cell_index(r, key)])
                    .min()
                    .expect("at least one row");
                let target = est + count;
                for r in 0..self.rows.len() {
                    let idx = self.cell_index(r, key);
                    if self.table[idx] < target {
                        self.table[idx] = target;
                    }
                }
            }
        }
    }

    fn estimate(&self, item: &I) -> u64 {
        let key = item_key(item);
        (0..self.rows.len())
            .map(|r| self.table[self.cell_index(r, key)])
            .min()
            .expect("at least one row")
    }

    /// Sketches do not store items.
    fn stored_len(&self) -> usize {
        0
    }

    /// Sketches cannot enumerate items; use
    /// [`crate::topk_tracker::SketchHeavyHitters`] to track candidates.
    fn entries(&self) -> Vec<(I, u64)> {
        Vec::new()
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::Over
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: UpdateRule, stream: &[u64], d: usize, w: usize) -> CountMin<u64> {
        let mut cm = CountMin::new(d, w, 42, rule);
        for &x in stream {
            cm.update(x);
        }
        cm
    }

    #[test]
    fn never_underestimates() {
        let stream: Vec<u64> = (0..5000).map(|i| i % 137).collect();
        for rule in [UpdateRule::Classic, UpdateRule::Conservative] {
            let cm = run(rule, &stream, 4, 64);
            for i in 0..137u64 {
                let exact = stream.iter().filter(|&&x| x == i).count() as u64;
                assert!(cm.estimate(&i) >= exact, "{rule:?} item {i}");
            }
        }
    }

    #[test]
    fn exact_when_width_huge() {
        let stream = [1u64, 1, 2, 3, 3, 3];
        let cm = run(UpdateRule::Classic, &stream, 4, 1 << 14);
        assert_eq!(cm.estimate(&1), 2);
        assert_eq!(cm.estimate(&2), 1);
        assert_eq!(cm.estimate(&3), 3);
        assert_eq!(cm.estimate(&99), 0);
    }

    #[test]
    fn error_within_classic_bound_whp() {
        // |err| <= e/w * F1 with prob >= 1 - e^-d per item
        let stream: Vec<u64> = (0..20_000).map(|i| (i * 31) % 997).collect();
        let w = 256;
        let cm = run(UpdateRule::Classic, &stream, 5, w);
        let bound = (std::f64::consts::E / w as f64 * stream.len() as f64).ceil() as u64;
        let mut failures = 0;
        for i in 0..997u64 {
            let exact = stream.iter().filter(|&&x| x == i).count() as u64;
            if cm.estimate(&i) - exact > bound {
                failures += 1;
            }
        }
        assert!(failures <= 2, "{failures} items beyond the CM bound");
    }

    #[test]
    fn conservative_never_worse_than_classic() {
        let stream: Vec<u64> = (0..10_000).map(|i| (i * i) % 499).collect();
        let classic = run(UpdateRule::Classic, &stream, 4, 128);
        let cons = run(UpdateRule::Conservative, &stream, 4, 128);
        for i in 0..499u64 {
            assert!(cons.estimate(&i) <= classic.estimate(&i), "item {i}");
        }
    }

    #[test]
    fn with_budget_uses_all_cells() {
        let cm: CountMin<u64> = CountMin::with_budget(1000, 4, 0, UpdateRule::Classic);
        assert_eq!(cm.depth(), 4);
        assert_eq!(cm.width(), 250);
        assert_eq!(cm.capacity(), 1000);
    }

    #[test]
    fn update_by_matches_unit_updates() {
        let mut a: CountMin<u64> = CountMin::new(3, 32, 7, UpdateRule::Classic);
        let mut b: CountMin<u64> = CountMin::new(3, 32, 7, UpdateRule::Classic);
        for (i, c) in [(3u64, 4u64), (5, 2), (3, 1)] {
            a.update_by(i, c);
            for _ in 0..c {
                b.update(i);
            }
        }
        for i in 0..10u64 {
            assert_eq!(a.estimate(&i), b.estimate(&i));
        }
    }
}
