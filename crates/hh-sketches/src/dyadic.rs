//! Dyadic Count-Min — the standard way a sketch *finds* heavy hitters.
//!
//! A flat Count-Min answers point queries but cannot enumerate heavy
//! items; the textbook remedy (Cormode & Muthukrishnan) keeps one sketch
//! per dyadic level of the id universe `[0, 2^bits)` and finds heavy
//! hitters by descending the implicit binary tree: a node is explored only
//! if its (over-)estimated subtree weight reaches the threshold. Since
//! Count-Min never underestimates, the descent has **no false negatives**.
//!
//! This costs a `bits`-factor more space and update time than a flat
//! sketch — exactly the `log n` factor in Table 1's sketch space bounds —
//! which is what the counter-vs-sketch comparison should (and here does)
//! charge for.

use hh_counters::traits::{Bias, FrequencyEstimator};

use crate::count_min::{CountMin, UpdateRule};

/// Count-Min sketches over every dyadic level of a `u64` id universe.
#[derive(Debug, Clone)]
pub struct DyadicCountMin {
    /// `levels[l]` counts prefixes of length `l+1` bits; the last level
    /// counts exact ids.
    levels: Vec<CountMin<u64>>,
    bits: u32,
    stream_len: u64,
}

impl DyadicCountMin {
    /// Creates sketches of `depth × width` per level over the universe
    /// `[0, 2^bits)`.
    pub fn new(bits: u32, depth: usize, width: usize, seed: u64) -> Self {
        assert!((1..=63).contains(&bits));
        let levels = (0..bits)
            .map(|l| {
                CountMin::new(
                    depth,
                    width,
                    seed.wrapping_add(l as u64 * 0x9E37_79B9),
                    UpdateRule::Classic,
                )
            })
            .collect();
        DyadicCountMin {
            levels,
            bits,
            stream_len: 0,
        }
    }

    /// Builds within a total cell budget, splitting evenly across levels
    /// (equal-space comparisons). Depth is clamped down when the budget is
    /// too small for the requested depth at every level — tiny budgets
    /// yield (honestly) terrible dyadic sketches, which is exactly the
    /// `log n` space tax the comparison experiments exist to show.
    pub fn with_budget(bits: u32, total_counters: usize, depth: usize, seed: u64) -> Self {
        let per_level = (total_counters / bits as usize).max(1);
        let depth = depth.min(per_level).max(1);
        Self::new(bits, depth, (per_level / depth).max(1), seed)
    }

    /// The id universe size `2^bits`.
    pub fn universe(&self) -> u64 {
        1u64 << self.bits
    }

    fn prefix(&self, item: u64, level: u32) -> u64 {
        // level l in 0..bits uses the top (l+1) bits of the id
        item >> (self.bits - level - 1)
    }

    /// All ids with estimated frequency `≥ threshold`, found by tree
    /// descent. No false negatives (Count-Min overestimates); false
    /// positives are possible exactly as for point queries.
    pub fn items_above(&self, threshold: u64) -> Vec<(u64, u64)> {
        if threshold == 0 || self.stream_len == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        // frontier of (level, prefix) nodes whose estimate >= threshold
        let mut frontier: Vec<(u32, u64)> = Vec::new();
        for root in 0..2u64 {
            if self.levels[0].estimate(&root) >= threshold {
                frontier.push((0, root));
            }
        }
        while let Some((level, prefix)) = frontier.pop() {
            if level + 1 == self.bits {
                out.push((prefix, self.levels[level as usize].estimate(&prefix)));
                continue;
            }
            for child in [prefix << 1, (prefix << 1) | 1] {
                if self.levels[level as usize + 1].estimate(&child) >= threshold {
                    frontier.push((level + 1, child));
                }
            }
        }
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// The `k` ids with the largest estimates, by best-first descent.
    pub fn top(&self, k: usize) -> Vec<(u64, u64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        if self.stream_len == 0 || k == 0 {
            return Vec::new();
        }
        // max-heap on estimate; entries are (est, Reverse(level), prefix)
        let mut heap: BinaryHeap<(u64, Reverse<u32>, u64)> = BinaryHeap::new();
        for root in 0..2u64 {
            heap.push((self.levels[0].estimate(&root), Reverse(0), root));
        }
        let mut out = Vec::new();
        while let Some((est, Reverse(level), prefix)) = heap.pop() {
            if est == 0 {
                break;
            }
            if level + 1 == self.bits {
                out.push((prefix, est));
                if out.len() == k {
                    break;
                }
                continue;
            }
            for child in [prefix << 1, (prefix << 1) | 1] {
                let e = self.levels[level as usize + 1].estimate(&child);
                if e > 0 {
                    heap.push((e, Reverse(level + 1), child));
                }
            }
        }
        out
    }
}

impl FrequencyEstimator<u64> for DyadicCountMin {
    fn name(&self) -> &'static str {
        "DyadicCountMin"
    }

    /// Total cells across all levels — the `log n` space factor shows up
    /// here.
    fn capacity(&self) -> usize {
        self.levels.iter().map(|l| l.capacity()).sum()
    }

    fn update_by(&mut self, item: u64, count: u64) {
        assert!(
            item < self.universe(),
            "item outside the configured universe"
        );
        if count == 0 {
            return;
        }
        self.stream_len += count;
        for level in 0..self.bits {
            let p = self.prefix(item, level);
            self.levels[level as usize].update_by(p, count);
        }
    }

    fn estimate(&self, item: &u64) -> u64 {
        self.levels[self.bits as usize - 1].estimate(item)
    }

    fn stored_len(&self) -> usize {
        0
    }

    /// Top-64 leaves via descent (sketches cannot enumerate exactly).
    fn entries(&self) -> Vec<(u64, u64)> {
        self.top(64)
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::Over
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed(n: u64, reps: u64) -> Vec<u64> {
        let mut s = Vec::new();
        for i in 0..n {
            s.extend(std::iter::repeat_n(i, (reps / (i + 1)) as usize));
        }
        s
    }

    #[test]
    fn point_estimates_never_undercount() {
        let stream = skewed(100, 500);
        let mut d = DyadicCountMin::new(10, 4, 64, 1);
        for &x in &stream {
            d.update(x);
        }
        for i in 0..100u64 {
            let f = stream.iter().filter(|&&x| x == i).count() as u64;
            assert!(d.estimate(&i) >= f);
        }
    }

    #[test]
    fn descent_finds_all_heavy_items() {
        let stream = skewed(200, 2000);
        let mut d = DyadicCountMin::new(12, 4, 256, 2);
        for &x in &stream {
            d.update(x);
        }
        let threshold = 300;
        let found: Vec<u64> = d
            .items_above(threshold)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        for i in 0..200u64 {
            let f = stream.iter().filter(|&&x| x == i).count() as u64;
            if f >= threshold {
                assert!(found.contains(&i), "missed heavy id {i} (f={f})");
            }
        }
    }

    #[test]
    fn top_k_matches_heavy_ids_on_very_skewed_data() {
        let mut stream = vec![7u64; 1000];
        stream.extend(vec![3u64; 500]);
        stream.extend(0..200u64);
        let mut d = DyadicCountMin::new(10, 5, 256, 3);
        for &x in &stream {
            d.update(x);
        }
        let top = d.top(2);
        assert_eq!(top[0].0, 7);
        assert_eq!(top[1].0, 3);
        assert!(top[0].1 >= 1000);
    }

    #[test]
    fn rejects_items_outside_universe() {
        let mut d = DyadicCountMin::new(4, 2, 8, 0);
        d.update(15u64); // 2^4 - 1: ok
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.update(16u64)));
        assert!(r.is_err());
    }

    #[test]
    fn capacity_counts_all_levels() {
        let d = DyadicCountMin::new(8, 2, 16, 0);
        assert_eq!(d.capacity(), 8 * 2 * 16);
        let b = DyadicCountMin::with_budget(8, 1024, 2, 0);
        assert!(b.capacity() <= 1024);
    }

    #[test]
    fn empty_sketch_reports_nothing() {
        let d = DyadicCountMin::new(8, 2, 16, 0);
        assert!(d.items_above(1).is_empty());
        assert!(d.top(5).is_empty());
    }
}
