//! The unified heavy-hitters engine (`hh::engine`).
//!
//! The paper's central observation is that FREQUENT, SPACESAVING and their
//! relatives are interchangeable instances of one heavy-tolerant counter
//! abstraction with `(A, B)` tail constants. This module turns that
//! observation into an API: an [`EngineConfig`] picks an algorithm
//! ([`AlgoKind`]) and a space budget ([`CapacitySpec`] — explicit, or
//! derived from `eps`/`k`/`phi` by the paper's sizing theorems), and
//! [`EngineConfig::build`] returns a uniform [`Engine`] handle. Every
//! engine answers the same [`Report`] queries (top-k, φ-heavy hitters with
//! confidence labels, residual estimation, per-item bound intervals),
//! serializes to one portable [`Snapshot`] format, and merges across
//! processes via [`Engine::merge`] (Theorem 11).
//!
//! ```
//! use hh_sketches::engine::{AlgoKind, EngineConfig};
//!
//! let mut engine = EngineConfig::new(AlgoKind::SpaceSaving)
//!     .counters(8)
//!     .build::<u64>()
//!     .unwrap();
//! engine.update_batch(&[1, 1, 1, 2, 2, 3, 1, 4]);
//!
//! let report = engine.report();
//! let top = report.top_k(1);
//! assert_eq!(top[0].item, 1);
//! // every entry carries a certified (lower, upper) frequency interval
//! assert!(top[0].lower <= 4 && 4 <= top[0].upper);
//! ```

use std::fmt;
use std::hash::Hash;
use std::str::FromStr;

use hh_counters::error::Error;
use hh_counters::heavy_hitters::Confidence;
use hh_counters::recovery;
use hh_counters::topk::zipf_counters_for_topk;
use hh_counters::traits::{Bias, FrequencyEstimator, TailConstants, WeightedFrequencyEstimator};
use hh_counters::{Frequent, FrequentR, LossyCounting, SpaceSaving, SpaceSavingR, StickySampling};
use serde::json::Value;
use serde::{Deserialize, Serialize};

use crate::count_min::{CountMin, UpdateRule};
use crate::count_sketch::CountSketch;
use crate::topk_tracker::SketchHeavyHitters;

/// Bound alias for item types an engine can track: hashable, orderable,
/// cloneable and sendable (so engines can be sharded across threads).
///
/// Blanket-implemented; `u64`, `String` and friends all qualify.
///
/// ```
/// fn takes_item<I: hh_sketches::engine::EngineItem>(_: I) {}
/// takes_item(42u64);
/// takes_item("flow".to_string());
/// ```
pub trait EngineItem: Eq + Hash + Ord + Clone + Send + 'static {}

impl<T: Eq + Hash + Ord + Clone + Send + 'static> EngineItem for T {}

// ---------------------------------------------------------------------------
// Algorithm selection
// ---------------------------------------------------------------------------

/// The algorithms an [`EngineConfig`] can construct.
///
/// The two headline counter algorithms carry the paper's deterministic
/// `A = B = 1` k-tail guarantee; the remaining four are the comparators the
/// paper measures against (deterministic and randomized counters, and the
/// two sketches wrapped with a heavy-hitter candidate heap).
///
/// ```
/// use hh_sketches::engine::AlgoKind;
///
/// assert_eq!(AlgoKind::ALL.len(), 6);
/// assert_eq!("spacesaving".parse::<AlgoKind>().unwrap(), AlgoKind::SpaceSaving);
/// assert!(AlgoKind::Frequent.is_counter());
/// assert!(!AlgoKind::CountSketch.is_counter());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoKind {
    /// SPACESAVING (overestimates; `A = B = 1` tail guarantee).
    SpaceSaving,
    /// FREQUENT / Misra–Gries (underestimates; `A = B = 1` tail guarantee).
    Frequent,
    /// LOSSYCOUNTING (underestimates; `εF1` guarantee, floating table).
    LossyCounting,
    /// STICKY SAMPLING (randomized; probabilistic `εF1` guarantee).
    StickySampling,
    /// Count-Min sketch plus a bounded candidate heap for enumeration.
    CountMin,
    /// Count-Sketch plus a bounded candidate heap for enumeration.
    CountSketch,
}

impl AlgoKind {
    /// All engine algorithms, counters first.
    pub const ALL: [AlgoKind; 6] = [
        AlgoKind::SpaceSaving,
        AlgoKind::Frequent,
        AlgoKind::LossyCounting,
        AlgoKind::StickySampling,
        AlgoKind::CountMin,
        AlgoKind::CountSketch,
    ];

    /// Canonical lowercase name (the one [`FromStr`] accepts first).
    ///
    /// ```
    /// assert_eq!(hh_sketches::engine::AlgoKind::CountMin.name(), "countmin");
    /// ```
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::SpaceSaving => "spacesaving",
            AlgoKind::Frequent => "frequent",
            AlgoKind::LossyCounting => "lossycounting",
            AlgoKind::StickySampling => "stickysampling",
            AlgoKind::CountMin => "countmin",
            AlgoKind::CountSketch => "countsketch",
        }
    }

    /// Whether the algorithm stores items explicitly (a counter algorithm)
    /// rather than hashing them into a sketch.
    ///
    /// ```
    /// use hh_sketches::engine::AlgoKind;
    /// assert!(AlgoKind::LossyCounting.is_counter());
    /// assert!(!AlgoKind::CountMin.is_counter());
    /// ```
    pub fn is_counter(self) -> bool {
        !matches!(self, AlgoKind::CountMin | AlgoKind::CountSketch)
    }

    /// Whether [`EngineConfig::build_weighted`] supports this algorithm
    /// (only the two Section 6.1 counter algorithms have real-weighted
    /// variants).
    ///
    /// ```
    /// use hh_sketches::engine::AlgoKind;
    /// assert!(AlgoKind::SpaceSaving.supports_weighted());
    /// assert!(!AlgoKind::StickySampling.supports_weighted());
    /// ```
    pub fn supports_weighted(self) -> bool {
        matches!(self, AlgoKind::SpaceSaving | AlgoKind::Frequent)
    }

    /// The `(A, B)` tail constants proved for the algorithm, if any.
    ///
    /// ```
    /// use hh_sketches::engine::AlgoKind;
    /// assert!(AlgoKind::SpaceSaving.tail_constants().is_some());
    /// assert!(AlgoKind::LossyCounting.tail_constants().is_none());
    /// ```
    pub fn tail_constants(self) -> Option<TailConstants> {
        match self {
            AlgoKind::SpaceSaving | AlgoKind::Frequent => Some(TailConstants::ONE_ONE),
            _ => None,
        }
    }
}

impl fmt::Display for AlgoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AlgoKind {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Error> {
        match s.to_ascii_lowercase().as_str() {
            "spacesaving" | "space-saving" | "ss" => Ok(AlgoKind::SpaceSaving),
            "frequent" | "misra-gries" | "mg" => Ok(AlgoKind::Frequent),
            "lossycounting" | "lossy-counting" | "lossy" | "lc" => Ok(AlgoKind::LossyCounting),
            "stickysampling" | "sticky-sampling" | "sticky" => Ok(AlgoKind::StickySampling),
            "countmin" | "count-min" | "cm" => Ok(AlgoKind::CountMin),
            "countsketch" | "count-sketch" | "cs" => Ok(AlgoKind::CountSketch),
            other => Err(Error::invalid_config(format!(
                "unknown algorithm {other:?} (expected one of spacesaving, frequent, \
                 lossycounting, stickysampling, countmin, countsketch)"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Capacity sizing
// ---------------------------------------------------------------------------

/// How many counters an engine gets: an explicit budget, or a budget
/// derived from accuracy targets by the paper's sizing results
/// ([`TailConstants::counters_for_sparse_recovery`],
/// [`TailConstants::counters_for_residual_estimate`], Definition 1, and
/// the Theorem 9 Zipf top-k recipe).
///
/// ```
/// use hh_sketches::engine::CapacitySpec;
/// use hh_counters::TailConstants;
///
/// // Theorem 6/7 sizing: m = Bk + Ak/eps = 10 + 100 with A = B = 1.
/// let spec = CapacitySpec::ResidualEstimate { k: 10, eps: 0.1 };
/// assert_eq!(spec.resolve(TailConstants::ONE_ONE, true).unwrap(), 110);
/// // explicit budgets pass through unchanged
/// assert_eq!(CapacitySpec::Counters(64).resolve(TailConstants::ONE_ONE, true).unwrap(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacitySpec {
    /// An explicit counter budget `m ≥ 1`.
    Counters(usize),
    /// Theorem 5 sizing for k-sparse recovery at error `eps`:
    /// `m = k(cA/eps + B)` with `c = 2` for one-sided algorithms, 3
    /// otherwise.
    SparseRecovery {
        /// Sparsity target `k ≥ 1`.
        k: usize,
        /// Relative error `eps ∈ (0, 1)`.
        eps: f64,
    },
    /// Theorem 6/7 sizing for residual estimation and uniform error
    /// `eps·F1^res(k)/k`: `m = Bk + Ak/eps`.
    ResidualEstimate {
        /// Tail parameter `k ≥ 1`.
        k: usize,
        /// Relative error `eps ∈ (0, 1)`.
        eps: f64,
    },
    /// Definition 1 sizing for the φ-heavy-hitters query: `m = ⌈A/phi⌉`
    /// counters keep every estimation error below `phi·F1`.
    HeavyHitters {
        /// Heavy-hitter threshold `phi ∈ (0, 1)`.
        phi: f64,
    },
    /// Theorem 9 sizing: enough counters to recover the top-k of Zipf(α)
    /// data over `n` distinct items in the correct order.
    ZipfTopK {
        /// Ranking depth `k ≥ 1`.
        k: usize,
        /// Zipf skew `alpha ≥ 1`.
        alpha: f64,
        /// Number of distinct items.
        n: usize,
    },
}

impl CapacitySpec {
    /// Resolves the spec to a concrete counter budget using the given tail
    /// constants (`one_sided` selects the tighter Theorem 5 constant).
    ///
    /// ```
    /// use hh_sketches::engine::CapacitySpec;
    /// use hh_counters::TailConstants;
    ///
    /// // Definition 1: phi = 1% needs ceil(A/phi) = 100 counters.
    /// let m = CapacitySpec::HeavyHitters { phi: 0.01 }
    ///     .resolve(TailConstants::ONE_ONE, true)
    ///     .unwrap();
    /// assert_eq!(m, 100);
    /// assert!(CapacitySpec::Counters(0).resolve(TailConstants::ONE_ONE, true).is_err());
    /// ```
    pub fn resolve(&self, constants: TailConstants, one_sided: bool) -> Result<usize, Error> {
        let check_eps = |eps: f64| {
            if eps > 0.0 && eps < 1.0 {
                Ok(())
            } else {
                Err(Error::invalid_config(format!(
                    "eps must be in (0, 1), got {eps}"
                )))
            }
        };
        let check_k = |k: usize| {
            if k >= 1 {
                Ok(())
            } else {
                Err(Error::invalid_config("k must be at least 1"))
            }
        };
        match *self {
            CapacitySpec::Counters(m) => {
                if m >= 1 {
                    Ok(m)
                } else {
                    Err(Error::invalid_config("need at least one counter"))
                }
            }
            CapacitySpec::SparseRecovery { k, eps } => {
                check_k(k)?;
                check_eps(eps)?;
                Ok(constants.counters_for_sparse_recovery(k, eps, one_sided))
            }
            CapacitySpec::ResidualEstimate { k, eps } => {
                check_k(k)?;
                check_eps(eps)?;
                Ok(constants.counters_for_residual_estimate(k, eps))
            }
            CapacitySpec::HeavyHitters { phi } => {
                if !(phi > 0.0 && phi < 1.0) {
                    return Err(Error::invalid_config(format!(
                        "phi must be in (0, 1), got {phi}"
                    )));
                }
                Ok((constants.a / phi).ceil().max(1.0) as usize)
            }
            CapacitySpec::ZipfTopK { k, alpha, n } => {
                check_k(k)?;
                if alpha < 1.0 {
                    return Err(Error::invalid_config(format!(
                        "Theorem 9 sizing requires alpha >= 1, got {alpha}"
                    )));
                }
                Ok(zipf_counters_for_topk(constants, k, alpha, n.max(1)))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Default depth (rows) for Count-Min backends — exported so harnesses
/// that build sketches directly stay in lockstep with the engine.
pub const CM_DEPTH: usize = 4;
/// Default depth (rows) for Count-Sketch backends.
pub const CS_DEPTH: usize = 5;
/// Support and failure parameters used for STICKY SAMPLING backends.
const STICKY_SUPPORT: f64 = 0.01;
const STICKY_DELTA: f64 = 0.1;

/// Builder describing how to construct an [`Engine`] (or a
/// [`WeightedEngine`]).
///
/// ```
/// use hh_sketches::engine::{AlgoKind, CapacitySpec, EngineConfig};
///
/// let config = EngineConfig::new(AlgoKind::Frequent)
///     .capacity(CapacitySpec::ResidualEstimate { k: 8, eps: 0.05 })
///     .seed(7);
/// let engine = config.build::<String>().unwrap();
/// assert_eq!(engine.capacity(), 168); // Bk + Ak/eps = 8 + 160
/// assert_eq!(engine.algo(), AlgoKind::Frequent);
/// ```
#[derive(Debug, Clone)]
pub struct EngineConfig {
    algo: AlgoKind,
    capacity: CapacitySpec,
    seed: u64,
    rule: UpdateRule,
    depth: Option<usize>,
}

impl EngineConfig {
    /// Starts a config for `algo` with the default budget of 256 counters.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let e = EngineConfig::new(AlgoKind::SpaceSaving).build::<u64>().unwrap();
    /// assert_eq!(e.capacity(), 256);
    /// ```
    pub fn new(algo: AlgoKind) -> Self {
        EngineConfig {
            algo,
            capacity: CapacitySpec::Counters(256),
            seed: 0,
            rule: UpdateRule::Classic,
            depth: None,
        }
    }

    /// The configured algorithm.
    pub fn algo(&self) -> AlgoKind {
        self.algo
    }

    /// Sets an explicit counter budget (shorthand for
    /// [`CapacitySpec::Counters`]).
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let e = EngineConfig::new(AlgoKind::SpaceSaving).counters(64).build::<u64>().unwrap();
    /// assert_eq!(e.capacity(), 64);
    /// ```
    pub fn counters(mut self, m: usize) -> Self {
        self.capacity = CapacitySpec::Counters(m);
        self
    }

    /// Sets the capacity from any [`CapacitySpec`].
    pub fn capacity(mut self, spec: CapacitySpec) -> Self {
        self.capacity = spec;
        self
    }

    /// Sizes the engine for residual-error target `eps` at tail parameter
    /// `k` (shorthand for [`CapacitySpec::ResidualEstimate`] — the sizing
    /// behind the CLI's `--eps` flag).
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let e = EngineConfig::new(AlgoKind::SpaceSaving).error_rate(0.1, 10).build::<u64>().unwrap();
    /// assert_eq!(e.capacity(), 110);
    /// ```
    pub fn error_rate(mut self, eps: f64, k: usize) -> Self {
        self.capacity = CapacitySpec::ResidualEstimate { k, eps };
        self
    }

    /// Sizes the engine to answer φ-heavy-hitter queries at threshold
    /// `phi` (shorthand for [`CapacitySpec::HeavyHitters`]).
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let e = EngineConfig::new(AlgoKind::Frequent).heavy_hitter_phi(0.02).build::<u64>().unwrap();
    /// assert_eq!(e.capacity(), 50);
    /// ```
    pub fn heavy_hitter_phi(mut self, phi: f64) -> Self {
        self.capacity = CapacitySpec::HeavyHitters { phi };
        self
    }

    /// Sizes the engine by the Theorem 9 Zipf top-k recipe (shorthand for
    /// [`CapacitySpec::ZipfTopK`]).
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let e = EngineConfig::new(AlgoKind::Frequent)
    ///     .zipf_top_k(10, 1.4, 20_000)
    ///     .build::<u64>()
    ///     .unwrap();
    /// assert!(e.capacity() > 10);
    /// ```
    pub fn zipf_top_k(mut self, k: usize, alpha: f64, n: usize) -> Self {
        self.capacity = CapacitySpec::ZipfTopK { k, alpha, n };
        self
    }

    /// Seeds the randomized backends (sticky sampling's coin flips, the
    /// sketches' hash families). Deterministic backends ignore it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches Count-Min to conservative (Estan–Varghese) updates.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let e = EngineConfig::new(AlgoKind::CountMin).conservative(true).build::<u64>().unwrap();
    /// assert_eq!(e.name(), "CountMin(CU)");
    /// ```
    pub fn conservative(mut self, conservative: bool) -> Self {
        self.rule = if conservative {
            UpdateRule::Conservative
        } else {
            UpdateRule::Classic
        };
        self
    }

    /// Overrides the sketch depth (rows). Ignored by counter algorithms.
    pub fn sketch_depth(mut self, depth: usize) -> Self {
        self.depth = Some(depth);
        self
    }

    /// The concrete counter budget this config resolves to (the sizing the
    /// build will use).
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let c = EngineConfig::new(AlgoKind::SpaceSaving).error_rate(0.01, 10);
    /// assert_eq!(c.resolved_counters().unwrap(), 1010);
    /// ```
    pub fn resolved_counters(&self) -> Result<usize, Error> {
        let constants = self.algo.tail_constants().unwrap_or(TailConstants::GENERIC);
        // Sketch budgets are sized with the generic constants too; the
        // one-sided discount only applies to the counter algorithms.
        let one_sided = self.algo.is_counter();
        self.capacity.resolve(constants, one_sided)
    }

    /// Builds the configured engine.
    ///
    /// Fails with [`Error::InvalidConfig`] on a bad capacity spec, or on a
    /// sketch budget too small to split between cells and candidate slots.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    ///
    /// for algo in AlgoKind::ALL {
    ///     let mut e = EngineConfig::new(algo).counters(128).seed(3).build::<u64>().unwrap();
    ///     e.update_batch(&[1, 1, 2]);
    ///     assert_eq!(e.stream_len(), 3);
    /// }
    /// ```
    pub fn build<I: EngineItem>(&self) -> Result<Engine<I>, Error> {
        let budget = self.resolved_counters()?;
        let backend: Box<dyn Backend<I> + Send> = match self.algo {
            AlgoKind::SpaceSaving => Box::new(SpaceSaving::new(budget)),
            AlgoKind::Frequent => Box::new(Frequent::new(budget)),
            AlgoKind::LossyCounting => Box::new(LossyCounting::with_width(budget as u64)),
            AlgoKind::StickySampling => Box::new(StickySampling::new(
                1.0 / (budget.max(2)) as f64,
                STICKY_SUPPORT,
                STICKY_DELTA,
                self.seed | 1,
            )),
            AlgoKind::CountMin => {
                let (cells, candidates) = split_sketch_budget(budget)?;
                let depth = self.depth.unwrap_or(CM_DEPTH);
                Box::new(SketchHeavyHitters::new(
                    CountMin::with_budget(cells.max(depth), depth, self.seed, self.rule),
                    candidates,
                ))
            }
            AlgoKind::CountSketch => {
                let (cells, candidates) = split_sketch_budget(budget)?;
                let depth = self.depth.unwrap_or(CS_DEPTH);
                Box::new(SketchHeavyHitters::new(
                    CountSketch::with_budget(cells.max(depth), depth, self.seed),
                    candidates,
                ))
            }
        };
        Ok(Engine {
            backend,
            kind: self.algo,
            ingest: IngestStats::default(),
            unobserved: 0,
        })
    }

    /// Builds the real-weighted variant (Section 6.1: SPACESAVINGR or
    /// FREQUENTR).
    ///
    /// Fails with [`Error::Unsupported`] for algorithms without a weighted
    /// form.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    ///
    /// let mut e = EngineConfig::new(AlgoKind::SpaceSaving)
    ///     .counters(16)
    ///     .build_weighted::<u64>()
    ///     .unwrap();
    /// e.update(7, 2.5);
    /// assert!((e.estimate(&7) - 2.5).abs() < 1e-12);
    /// assert!(EngineConfig::new(AlgoKind::CountMin).build_weighted::<u64>().is_err());
    /// ```
    pub fn build_weighted<I: EngineItem>(&self) -> Result<WeightedEngine<I>, Error> {
        let budget = self.resolved_counters()?;
        let backend: Box<dyn WeightedBackend<I> + Send> = match self.algo {
            AlgoKind::SpaceSaving => Box::new(SpaceSavingR::new(budget)),
            AlgoKind::Frequent => Box::new(FrequentR::new(budget)),
            other => {
                return Err(Error::Unsupported {
                    algo: other.name().to_string(),
                    operation: "weighted updates",
                })
            }
        };
        Ok(WeightedEngine {
            backend,
            kind: self.algo,
        })
    }
}

/// Splits a sketch's total budget into (cells, candidate slots), charging
/// a tenth (at least 16 slots) for the candidate heap a sketch needs to
/// enumerate heavy hitters at all.
fn split_sketch_budget(budget: usize) -> Result<(usize, usize), Error> {
    if budget < 16 {
        return Err(Error::invalid_config(format!(
            "sketch budgets below 16 cells are meaningless, got {budget}"
        )));
    }
    let candidates = (budget / 10).max(16).min(budget / 2);
    Ok((budget - candidates, candidates))
}

// ---------------------------------------------------------------------------
// Snapshot wire format
// ---------------------------------------------------------------------------

/// Wire state of a SPACESAVING backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceSavingState<I> {
    /// Counter capacity `m`.
    pub capacity: usize,
    /// Total stream length consumed.
    pub stream_len: u64,
    /// Upper-bound slack accumulated from prior merges (donor `Δ`s).
    pub absorbed_slack: u64,
    /// Stored `(item, count, err)` triples in descending count order.
    pub entries: Vec<(I, u64, u64)>,
}

/// Wire state of a FREQUENT backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequentState<I> {
    /// Counter capacity `m`.
    pub capacity: usize,
    /// Total stream length consumed.
    pub stream_len: u64,
    /// Decrement rounds performed.
    pub decrements: u64,
    /// Stored `(item, logical value)` pairs in descending order.
    pub entries: Vec<(I, u64)>,
}

/// Wire state of a LOSSYCOUNTING backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossyCountingState<I> {
    /// Window width `w = ⌈1/ε⌉`.
    pub width: u64,
    /// Current window id.
    pub window: u64,
    /// Total stream length consumed.
    pub stream_len: u64,
    /// Table-size high-water mark.
    pub max_table: usize,
    /// Stored `(item, count, delta)` triples.
    pub entries: Vec<(I, u64, u64)>,
}

/// Wire state of a STICKY SAMPLING backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StickySamplingState<I> {
    /// Error parameter ε.
    pub epsilon: f64,
    /// Window parameter `w`.
    pub window: u64,
    /// Current sampling rate.
    pub rate: u64,
    /// Arrivals remaining until the next rate doubling.
    pub until_double: u64,
    /// PRNG state word.
    pub rng_state: u64,
    /// Total stream length consumed.
    pub stream_len: u64,
    /// Table-size high-water mark.
    pub max_table: usize,
    /// Stored `(item, count)` pairs.
    pub entries: Vec<(I, u64)>,
}

/// Wire state of a Count-Min backend (sketch cells plus candidate heap).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountMinState<I> {
    /// Rows `d`.
    pub depth: usize,
    /// Columns `w`.
    pub width: usize,
    /// Hash-family seed.
    pub seed: u64,
    /// Whether conservative updates are in force.
    pub conservative: bool,
    /// Total stream length consumed.
    pub stream_len: u64,
    /// The `d × w` cells, row-major.
    pub cells: Vec<u64>,
    /// Tracked candidate items.
    pub candidates: Vec<I>,
    /// Candidate slots.
    pub cap: usize,
}

/// Revision of Count-Sketch's seed→layout derivation. Bumped when the
/// hash family changes (rev 2: the folded single-polynomial bucket+sign
/// evaluation), so a snapshot captured under a different derivation fails
/// loudly instead of silently rehydrating into wrong cell positions.
pub const CS_HASH_REV: u32 = 2;

/// Wire state of a Count-Sketch backend (signed cells plus candidate heap).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountSketchState<I> {
    /// Rows `d`.
    pub depth: usize,
    /// Columns `w`.
    pub width: usize,
    /// Hash-family seed.
    pub seed: u64,
    /// Hash-derivation revision the cells were produced under
    /// ([`CS_HASH_REV`]); mismatches are rejected at restore/merge time.
    /// (Snapshots from before this field existed fail to deserialize —
    /// their cells came from the old two-polynomial family and cannot be
    /// interpreted by this build either.)
    pub hash_rev: u32,
    /// Total stream length consumed.
    pub stream_len: u64,
    /// The `d × w` signed cells, row-major.
    pub cells: Vec<i64>,
    /// Tracked candidate items.
    pub candidates: Vec<I>,
    /// Candidate slots.
    pub cap: usize,
}

/// Wire state of a weighted SPACESAVINGR backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceSavingRState<I> {
    /// Counter capacity `m`.
    pub capacity: usize,
    /// Total stream weight consumed.
    pub total_weight: f64,
    /// Upper-bound slack accumulated from prior merges (donor minimums).
    pub absorbed_slack: f64,
    /// Stored `(item, weight, err)` triples in descending weight order.
    pub entries: Vec<(I, f64, f64)>,
}

/// Wire state of a weighted FREQUENTR backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequentRState<I> {
    /// Counter capacity `m`.
    pub capacity: usize,
    /// Total stream weight consumed.
    pub total_weight: f64,
    /// Accumulated reduction offset.
    pub reductions: f64,
    /// Stored `(item, logical value)` pairs in descending order.
    pub entries: Vec<(I, f64)>,
}

/// The single portable snapshot format covering every engine backend.
///
/// A snapshot round-trips through JSON (or any serde format) and
/// rehydrates — via [`Engine::from_snapshot`] /
/// [`WeightedEngine::from_snapshot`] — into an engine whose estimates,
/// bounds and tie-breaking state are identical to the captured one's.
/// Snapshots are also the merge currency: [`Engine::merge_snapshot`]
/// absorbs a snapshot produced by another process.
///
/// ```
/// use hh_sketches::engine::{AlgoKind, Engine, EngineConfig, Snapshot};
///
/// let mut e = EngineConfig::new(AlgoKind::SpaceSaving).counters(4).build::<u64>().unwrap();
/// e.update_batch(&[1, 1, 2, 3]);
/// let json = serde_json::to_string(&e.snapshot()).unwrap();
/// let back: Snapshot<u64> = serde_json::from_str(&json).unwrap();
/// assert_eq!(back.algo(), AlgoKind::SpaceSaving);
/// let restored = Engine::from_snapshot(back).unwrap();
/// assert_eq!(restored.estimate(&1), e.estimate(&1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Snapshot<I> {
    /// SPACESAVING state.
    SpaceSaving(SpaceSavingState<I>),
    /// FREQUENT state.
    Frequent(FrequentState<I>),
    /// LOSSYCOUNTING state.
    LossyCounting(LossyCountingState<I>),
    /// STICKY SAMPLING state.
    StickySampling(StickySamplingState<I>),
    /// Count-Min state.
    CountMin(CountMinState<I>),
    /// Count-Sketch state.
    CountSketch(CountSketchState<I>),
    /// Weighted SPACESAVINGR state.
    SpaceSavingR(SpaceSavingRState<I>),
    /// Weighted FREQUENTR state.
    FrequentR(FrequentRState<I>),
}

impl<I> Snapshot<I> {
    /// The algorithm the snapshot came from (weighted variants report
    /// their unweighted [`AlgoKind`]).
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let e = EngineConfig::new(AlgoKind::Frequent).counters(4).build::<u64>().unwrap();
    /// assert_eq!(e.snapshot().algo(), AlgoKind::Frequent);
    /// ```
    pub fn algo(&self) -> AlgoKind {
        match self {
            Snapshot::SpaceSaving(_) | Snapshot::SpaceSavingR(_) => AlgoKind::SpaceSaving,
            Snapshot::Frequent(_) | Snapshot::FrequentR(_) => AlgoKind::Frequent,
            Snapshot::LossyCounting(_) => AlgoKind::LossyCounting,
            Snapshot::StickySampling(_) => AlgoKind::StickySampling,
            Snapshot::CountMin(_) => AlgoKind::CountMin,
            Snapshot::CountSketch(_) => AlgoKind::CountSketch,
        }
    }

    /// Whether this is a weighted (Section 6.1) snapshot.
    pub fn is_weighted(&self) -> bool {
        matches!(self, Snapshot::SpaceSavingR(_) | Snapshot::FrequentR(_))
    }

    fn tag(&self) -> &'static str {
        match self {
            Snapshot::SpaceSaving(_) => "space_saving",
            Snapshot::Frequent(_) => "frequent",
            Snapshot::LossyCounting(_) => "lossy_counting",
            Snapshot::StickySampling(_) => "sticky_sampling",
            Snapshot::CountMin(_) => "count_min",
            Snapshot::CountSketch(_) => "count_sketch",
            Snapshot::SpaceSavingR(_) => "space_saving_r",
            Snapshot::FrequentR(_) => "frequent_r",
        }
    }
}

// The vendored serde derive handles plain structs only, so the enum's
// externally-tagged encoding ({"algo": tag, "state": {...}}) is written by
// hand on top of the derived per-variant state impls.
impl<I: Serialize> Serialize for Snapshot<I> {
    fn to_value(&self) -> Value {
        let state = match self {
            Snapshot::SpaceSaving(s) => s.to_value(),
            Snapshot::Frequent(s) => s.to_value(),
            Snapshot::LossyCounting(s) => s.to_value(),
            Snapshot::StickySampling(s) => s.to_value(),
            Snapshot::CountMin(s) => s.to_value(),
            Snapshot::CountSketch(s) => s.to_value(),
            Snapshot::SpaceSavingR(s) => s.to_value(),
            Snapshot::FrequentR(s) => s.to_value(),
        };
        Value::Object(vec![
            ("algo".to_string(), Value::String(self.tag().to_string())),
            ("state".to_string(), state),
        ])
    }
}

impl<I: Deserialize> Deserialize for Snapshot<I> {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom(format!("expected snapshot object, got {v:?}")))?;
        let tag_value = serde::get_field(entries, "algo")?;
        let tag = tag_value
            .as_str()
            .ok_or_else(|| serde::Error::custom("snapshot `algo` tag must be a string"))?;
        let state = serde::get_field(entries, "state")?;
        match tag {
            "space_saving" => Ok(Snapshot::SpaceSaving(Deserialize::from_value(state)?)),
            "frequent" => Ok(Snapshot::Frequent(Deserialize::from_value(state)?)),
            "lossy_counting" => Ok(Snapshot::LossyCounting(Deserialize::from_value(state)?)),
            "sticky_sampling" => Ok(Snapshot::StickySampling(Deserialize::from_value(state)?)),
            "count_min" => Ok(Snapshot::CountMin(Deserialize::from_value(state)?)),
            "count_sketch" => Ok(Snapshot::CountSketch(Deserialize::from_value(state)?)),
            "space_saving_r" => Ok(Snapshot::SpaceSavingR(Deserialize::from_value(state)?)),
            "frequent_r" => Ok(Snapshot::FrequentR(Deserialize::from_value(state)?)),
            other => Err(serde::Error::custom(format!(
                "unknown snapshot algo tag {other:?}"
            ))),
        }
    }
}

fn mismatch<I>(expected: &'static str, found: &Snapshot<I>) -> Error {
    Error::SnapshotMismatch {
        expected: expected.to_string(),
        found: found.tag().to_string(),
    }
}

/// Rejects Count-Sketch snapshots whose cells were produced under a
/// different seed→layout derivation — the seed alone cannot tell them
/// apart, and merging or rehydrating across derivations silently corrupts
/// every estimate.
fn check_cs_hash_rev(rev: u32) -> Result<(), Error> {
    if rev == CS_HASH_REV {
        Ok(())
    } else {
        Err(Error::corrupt_snapshot(format!(
            "count_sketch snapshot uses hash derivation rev {rev}, this build uses rev \
             {CS_HASH_REV}; re-capture the snapshot with a matching build"
        )))
    }
}

// ---------------------------------------------------------------------------
// Backend plumbing
// ---------------------------------------------------------------------------

/// Object-safe extension every engine backend implements on top of
/// [`FrequencyEstimator`]: snapshot capture and snapshot absorption.
trait Backend<I: EngineItem>: FrequencyEstimator<I> {
    fn snapshot(&self) -> Snapshot<I>;
    fn absorb(&mut self, snap: &Snapshot<I>) -> Result<(), Error>;
}

impl<I: EngineItem> Backend<I> for SpaceSaving<I> {
    fn snapshot(&self) -> Snapshot<I> {
        Snapshot::SpaceSaving(SpaceSavingState {
            capacity: self.capacity(),
            stream_len: self.stream_len(),
            absorbed_slack: self.absorbed_slack(),
            entries: self.entries_with_err(),
        })
    }

    fn absorb(&mut self, snap: &Snapshot<I>) -> Result<(), Error> {
        let Snapshot::SpaceSaving(state) = snap else {
            return Err(mismatch("space_saving", snap));
        };
        // replay the counters carrying their overcount bounds (sound lower
        // bounds) and widen the upper-bound slack by the donor's Δ (sound
        // upper bounds for items the donor did not store)
        self.absorb_parts(&state.entries, state.capacity, state.absorbed_slack);
        Ok(())
    }
}

impl<I: EngineItem> Backend<I> for Frequent<I> {
    fn snapshot(&self) -> Snapshot<I> {
        Snapshot::Frequent(FrequentState {
            capacity: self.capacity(),
            stream_len: self.stream_len(),
            decrements: self.decrements(),
            entries: self.entries(),
        })
    }

    fn absorb(&mut self, snap: &Snapshot<I>) -> Result<(), Error> {
        let Snapshot::Frequent(state) = snap else {
            return Err(mismatch("frequent", snap));
        };
        // replay the counters and fold in the donor's decrement rounds and
        // unstored stream mass, keeping upper bounds and F1 sound
        self.absorb_parts(&state.entries, state.decrements, state.stream_len);
        Ok(())
    }
}

impl<I: EngineItem> Backend<I> for LossyCounting<I> {
    fn snapshot(&self) -> Snapshot<I> {
        Snapshot::LossyCounting(LossyCountingState {
            width: self.width(),
            window: self.window(),
            stream_len: self.stream_len(),
            max_table: self.max_table_len(),
            entries: self.entries_with_delta(),
        })
    }

    fn absorb(&mut self, snap: &Snapshot<I>) -> Result<(), Error> {
        let Snapshot::LossyCounting(state) = snap else {
            return Err(mismatch("lossy_counting", snap));
        };
        // Manku–Motwani distributed merge: counts and deltas add, the
        // absent side contributing its window bound — see
        // `LossyCounting::absorb_parts`
        self.absorb_parts(state.entries.clone(), state.window, state.stream_len);
        Ok(())
    }
}

impl<I: EngineItem> Backend<I> for StickySampling<I> {
    fn snapshot(&self) -> Snapshot<I> {
        Snapshot::StickySampling(StickySamplingState {
            epsilon: self.epsilon(),
            window: self.window(),
            rate: self.rate(),
            until_double: self.until_double(),
            rng_state: self.rng_state(),
            stream_len: self.stream_len(),
            max_table: self.max_table_len(),
            entries: self.entries_sorted(),
        })
    }

    fn absorb(&mut self, snap: &Snapshot<I>) -> Result<(), Error> {
        let Snapshot::StickySampling(state) = snap else {
            return Err(mismatch("sticky_sampling", snap));
        };
        // O(m) table union — replaying through the sampler would cost
        // O(total count) coin flips and re-thin the donor's sample
        self.absorb_parts(state.entries.clone(), state.stream_len);
        Ok(())
    }
}

impl<I: EngineItem> Backend<I> for SketchHeavyHitters<I, CountMin<I>> {
    fn snapshot(&self) -> Snapshot<I> {
        let sketch = self.sketch();
        Snapshot::CountMin(CountMinState {
            depth: sketch.depth(),
            width: sketch.width(),
            seed: sketch.seed(),
            conservative: sketch.rule() == UpdateRule::Conservative,
            stream_len: sketch.stream_len(),
            cells: sketch.cells().to_vec(),
            candidates: self.candidate_items(),
            cap: self.candidate_cap(),
        })
    }

    fn absorb(&mut self, snap: &Snapshot<I>) -> Result<(), Error> {
        let Snapshot::CountMin(state) = snap else {
            return Err(mismatch("count_min", snap));
        };
        let rule = if state.conservative {
            UpdateRule::Conservative
        } else {
            UpdateRule::Classic
        };
        let other_sketch = CountMin::from_parts(
            state.depth,
            state.width,
            state.seed,
            rule,
            state.stream_len,
            state.cells.clone(),
        )?;
        let other = SketchHeavyHitters::from_parts(
            other_sketch,
            state.candidates.clone(),
            state.cap.max(1),
        )?;
        self.merge_from(&other, |a, b| a.merge_from(b))
    }
}

impl<I: EngineItem> Backend<I> for SketchHeavyHitters<I, CountSketch<I>> {
    fn snapshot(&self) -> Snapshot<I> {
        let sketch = self.sketch();
        Snapshot::CountSketch(CountSketchState {
            depth: sketch.depth(),
            width: sketch.width(),
            seed: sketch.seed(),
            hash_rev: CS_HASH_REV,
            stream_len: sketch.stream_len(),
            cells: sketch.cells().to_vec(),
            candidates: self.candidate_items(),
            cap: self.candidate_cap(),
        })
    }

    fn absorb(&mut self, snap: &Snapshot<I>) -> Result<(), Error> {
        let Snapshot::CountSketch(state) = snap else {
            return Err(mismatch("count_sketch", snap));
        };
        check_cs_hash_rev(state.hash_rev)?;
        let other_sketch = CountSketch::from_parts(
            state.depth,
            state.width,
            state.seed,
            state.stream_len,
            state.cells.clone(),
        )?;
        let other = SketchHeavyHitters::from_parts(
            other_sketch,
            state.candidates.clone(),
            state.cap.max(1),
        )?;
        self.merge_from(&other, |a, b| a.merge_from(b))
    }
}

// ---------------------------------------------------------------------------
// The engine handle
// ---------------------------------------------------------------------------

/// Ingest-side accounting an [`Engine`] keeps as it consumes its stream.
///
/// Plain (non-atomic) `u64`s: an engine is single-owner on its ingest
/// path, so the counters are branch-free adds that cost nothing
/// measurable next to the backend work — they are always on, not feature
/// gated. `occurrences` tracks weighted arrivals (an `update_by(x, 5)`
/// adds 5), so after pure ingest it equals [`Engine::stream_len`];
/// unlike `stream_len` it is **not** carried across
/// snapshot/merge/rehydration — it counts what *this* engine instance
/// ingested locally, which is exactly what runtime telemetry wants
/// (see [`crate::pipeline::PipelineStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Occurrences ingested locally (weighted: `update_by` adds `count`).
    pub occurrences: u64,
    /// Single-item calls (`update` / `update_by`).
    pub calls: u64,
    /// Slices consumed via `update_batch` / `update_many`.
    pub batches: u64,
}

/// A uniform, object-safe handle over any configured backend.
///
/// `Engine` itself implements [`FrequencyEstimator`], so everything in the
/// workspace that is generic over estimators — `check_tail`, `k_sparse`,
/// `merge_k_sparse`, `parallel_summarize`, `TopKMonitor` — drives engines
/// unchanged.
///
/// ```
/// use hh_sketches::engine::{AlgoKind, EngineConfig};
/// use hh_counters::FrequencyEstimator;
///
/// let mut e = EngineConfig::new(AlgoKind::Frequent).counters(8).build().unwrap();
/// e.update("the".to_string());
/// e.update("the".to_string());
/// assert_eq!(e.estimate(&"the".to_string()), 2);
/// assert_eq!(e.stored_len(), 1);
/// ```
pub struct Engine<I: EngineItem> {
    backend: Box<dyn Backend<I> + Send>,
    kind: AlgoKind,
    ingest: IngestStats,
    /// Occurrences known to exist in the true stream but never ingested
    /// (e.g. a crashed pipeline shard's unsnapshotted in-queue mass, see
    /// [`Engine::add_unobserved`]). Widens every upper bound and `F1`.
    unobserved: u64,
}

impl<I: EngineItem> fmt::Debug for Engine<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("algo", &self.kind)
            .field("capacity", &self.backend.capacity())
            .field("stored_len", &self.backend.stored_len())
            .field("stream_len", &self.backend.stream_len())
            .field("unobserved", &self.unobserved)
            .finish()
    }
}

impl<I: EngineItem> Engine<I> {
    /// The algorithm this engine runs.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let e = EngineConfig::new(AlgoKind::CountSketch).counters(64).build::<u64>().unwrap();
    /// assert_eq!(e.algo(), AlgoKind::CountSketch);
    /// ```
    pub fn algo(&self) -> AlgoKind {
        self.kind
    }

    /// Short human-readable backend name (e.g. `"SpaceSaving"`,
    /// `"CountMin(CU)"`).
    pub fn name(&self) -> &'static str {
        self.backend.name()
    }

    /// The space budget `m` the backend was built with (for sketches:
    /// cells plus candidate slots).
    pub fn capacity(&self) -> usize {
        self.backend.capacity()
    }

    /// Processes one occurrence of `item`.
    pub fn update(&mut self, item: I) {
        self.ingest.occurrences += 1;
        self.ingest.calls += 1;
        self.backend.update(item);
    }

    /// Processes `count` occurrences of `item` at once.
    pub fn update_by(&mut self, item: I, count: u64) {
        self.ingest.occurrences += count;
        self.ingest.calls += 1;
        self.backend.update_by(item, count);
    }

    /// Processes a slice of arrivals through the backend's batched fast
    /// path.
    ///
    /// Every backend routes this through a pre-aggregation step over a
    /// backend-owned reusable scratch buffer (no per-batch allocation):
    /// commutative sketches collapse the batch to one weighted update per
    /// distinct item, order-sensitive backends collapse adjacent runs —
    /// the strongest aggregation that preserves their exact per-element
    /// semantics.
    pub fn update_batch(&mut self, items: &[I]) {
        self.ingest.occurrences += items.len() as u64;
        self.ingest.batches += 1;
        self.backend.update_batch(items);
    }

    /// Processes several slices of arrivals in order — the chunked ingest
    /// surface for drivers that buffer their input (the CLI reads line
    /// chunks; shard workers drain partition segments). Each chunk goes
    /// through [`Engine::update_batch`] with one virtual call, and the
    /// backend's pre-aggregation scratch is reused across chunks.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let mut e = EngineConfig::new(AlgoKind::SpaceSaving).counters(8).build::<u64>().unwrap();
    /// e.update_many(&[&[1, 1, 2][..], &[2, 3][..]]);
    /// assert_eq!(e.stream_len(), 5);
    /// ```
    pub fn update_many(&mut self, chunks: &[&[I]]) {
        for chunk in chunks {
            self.ingest.occurrences += chunk.len() as u64;
        }
        self.ingest.batches += chunks.len() as u64;
        self.backend.update_many(chunks);
    }

    /// This engine instance's local ingest accounting (see
    /// [`IngestStats`] for what "local" excludes).
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let mut e = EngineConfig::new(AlgoKind::SpaceSaving).counters(8).build::<u64>().unwrap();
    /// e.update_batch(&[1, 1, 2]);
    /// e.update_by(7, 5);
    /// let stats = e.ingest_stats();
    /// assert_eq!(stats.occurrences, 8);
    /// assert_eq!(stats.batches, 1);
    /// assert_eq!(stats.calls, 1);
    /// ```
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingest
    }

    /// The backend's point estimate `c_i` (0 for unstored items).
    pub fn estimate(&self, item: &I) -> u64 {
        self.backend.estimate(item)
    }

    /// Number of items currently stored.
    pub fn stored_len(&self) -> usize {
        self.backend.stored_len()
    }

    /// Stored `(item, estimate)` pairs, sorted by decreasing estimate.
    pub fn entries(&self) -> Vec<(I, u64)> {
        self.backend.entries()
    }

    /// Total stream length accounted for so far (`F1`): occurrences the
    /// backend consumed plus any [unobserved mass](Engine::add_unobserved).
    pub fn stream_len(&self) -> u64 {
        self.backend.stream_len().saturating_add(self.unobserved)
    }

    /// Charges `mass` occurrences that are known to exist in the true
    /// stream but were never delivered to any backend — the loss-accounting
    /// primitive behind supervised shard recovery: when a pipeline shard
    /// dies, the items shipped to it since its last epoch snapshot are
    /// gone, and a recovered merged view stays *sound* by assuming every
    /// one of them could have been any single item.
    ///
    /// Concretely, `stream_len`, every [`upper_estimate`] and every
    /// [`error_term`] grow by `mass` while point and lower estimates are
    /// untouched, so certified `(lower, upper)` intervals still bracket
    /// the true counts (the Theorem 11 `(3A, A+B)` certificate degrades
    /// by at most the lost mass, never silently). The mass is engine-local
    /// bookkeeping: it is **not** carried by [`Engine::snapshot`] —
    /// callers persisting a lossy engine must persist it alongside (the
    /// checkpoint envelope in `hh-net` does).
    ///
    /// [`upper_estimate`]: FrequencyEstimator::upper_estimate
    /// [`error_term`]: FrequencyEstimator::error_term
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// use hh_counters::FrequencyEstimator;
    /// let mut e = EngineConfig::new(AlgoKind::SpaceSaving).counters(8).build::<u64>().unwrap();
    /// e.update_batch(&[1, 1, 2]);
    /// e.add_unobserved(5);
    /// assert_eq!(e.stream_len(), 8);
    /// assert_eq!(e.lower_estimate(&1), 2);
    /// assert_eq!(e.upper_estimate(&1), 7); // 1 may hide in the lost mass
    /// assert_eq!(e.unobserved(), 5);
    /// ```
    pub fn add_unobserved(&mut self, mass: u64) {
        self.unobserved = self.unobserved.saturating_add(mass);
    }

    /// The unobserved mass charged so far (see [`Engine::add_unobserved`]).
    pub fn unobserved(&self) -> u64 {
        self.unobserved
    }

    /// The backend's bias direction.
    pub fn bias(&self) -> Bias {
        self.backend.bias()
    }

    /// The `(A, B)` tail constants proved for the backend, if any.
    pub fn tail_constants(&self) -> Option<TailConstants> {
        self.backend.tail_constants()
    }

    /// The unified query surface over this engine's current state.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let mut e = EngineConfig::new(AlgoKind::SpaceSaving).counters(8).build::<u64>().unwrap();
    /// e.update_batch(&[5, 5, 5, 9]);
    /// assert_eq!(e.report().top_k(1)[0].item, 5);
    /// ```
    pub fn report(&self) -> Report<'_, I> {
        Report { engine: self }
    }

    /// Captures the engine's full state as a portable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot<I> {
        self.backend.snapshot()
    }

    /// Rehydrates an engine from a snapshot; the restored engine answers
    /// every query identically to the captured one and continues the
    /// stream bit-identically.
    ///
    /// Fails with [`Error::CorruptSnapshot`] on inconsistent state, or
    /// [`Error::Unsupported`] for weighted snapshots (use
    /// [`WeightedEngine::from_snapshot`]).
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, Engine, EngineConfig};
    /// let mut e = EngineConfig::new(AlgoKind::LossyCounting).counters(8).build::<u64>().unwrap();
    /// e.update_batch(&[1, 1, 2]);
    /// let restored = Engine::from_snapshot(e.snapshot()).unwrap();
    /// assert_eq!(restored.estimate(&1), 2);
    /// ```
    pub fn from_snapshot(snap: Snapshot<I>) -> Result<Self, Error> {
        let (kind, backend): (AlgoKind, Box<dyn Backend<I> + Send>) = match snap {
            Snapshot::SpaceSaving(s) => (
                AlgoKind::SpaceSaving,
                Box::new(SpaceSaving::from_parts(
                    s.capacity,
                    s.stream_len,
                    s.absorbed_slack,
                    s.entries,
                )?),
            ),
            Snapshot::Frequent(s) => (
                AlgoKind::Frequent,
                Box::new(Frequent::from_parts(
                    s.capacity,
                    s.stream_len,
                    s.decrements,
                    s.entries,
                )?),
            ),
            Snapshot::LossyCounting(s) => (
                AlgoKind::LossyCounting,
                Box::new(LossyCounting::from_parts(
                    s.width,
                    s.window,
                    s.stream_len,
                    s.max_table,
                    s.entries,
                )?),
            ),
            Snapshot::StickySampling(s) => (
                AlgoKind::StickySampling,
                Box::new(StickySampling::from_parts(
                    s.epsilon,
                    s.window,
                    s.rate,
                    s.until_double,
                    s.rng_state,
                    s.stream_len,
                    s.max_table,
                    s.entries,
                )?),
            ),
            Snapshot::CountMin(s) => {
                let rule = if s.conservative {
                    UpdateRule::Conservative
                } else {
                    UpdateRule::Classic
                };
                let sketch =
                    CountMin::from_parts(s.depth, s.width, s.seed, rule, s.stream_len, s.cells)?;
                (
                    AlgoKind::CountMin,
                    Box::new(SketchHeavyHitters::from_parts(sketch, s.candidates, s.cap)?),
                )
            }
            Snapshot::CountSketch(s) => {
                check_cs_hash_rev(s.hash_rev)?;
                let sketch =
                    CountSketch::from_parts(s.depth, s.width, s.seed, s.stream_len, s.cells)?;
                (
                    AlgoKind::CountSketch,
                    Box::new(SketchHeavyHitters::from_parts(sketch, s.candidates, s.cap)?),
                )
            }
            weighted @ (Snapshot::SpaceSavingR(_) | Snapshot::FrequentR(_)) => {
                return Err(Error::Unsupported {
                    algo: weighted.algo().name().to_string(),
                    operation: "rehydrating a weighted snapshot into an unweighted Engine",
                })
            }
        };
        Ok(Engine {
            backend,
            kind,
            ingest: IngestStats::default(),
            unobserved: 0,
        })
    }

    /// Absorbs a snapshot produced elsewhere (another process, an earlier
    /// run) into this engine — the cross-process merge primitive.
    ///
    /// Counter backends replay the snapshot's stored counters (the
    /// full-replay variant of Theorem 11's merge, so two merged `(A, B)`
    /// summaries keep a `(3A, A+B)` tail guarantee) while folding in the
    /// donor's bound bookkeeping — SPACESAVING error annotations, FREQUENT
    /// decrement rounds, LOSSYCOUNTING deltas — so per-item `(lower,
    /// upper)` intervals stay sound after the merge and `stream_len`
    /// reports the true combined `F1`. STICKY SAMPLING merges by O(m)
    /// table union; sketch backends add cell-wise and re-rank the
    /// candidate union. Fails with [`Error::SnapshotMismatch`] when
    /// algorithms (or sketch shapes) differ.
    pub fn merge_snapshot(&mut self, snap: &Snapshot<I>) -> Result<(), Error> {
        self.backend.absorb(snap)
    }

    /// Merges another engine of the same configuration into this one (see
    /// [`Engine::merge_snapshot`]).
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let config = EngineConfig::new(AlgoKind::SpaceSaving).counters(8);
    /// let mut a = config.build::<u64>().unwrap();
    /// let mut b = config.build::<u64>().unwrap();
    /// a.update_batch(&[1, 1, 2]);
    /// b.update_batch(&[1, 3]);
    /// a.merge(&b).unwrap();
    /// assert_eq!(a.stream_len(), 5);
    /// assert_eq!(a.estimate(&1), 3);
    /// ```
    pub fn merge(&mut self, other: &Engine<I>) -> Result<(), Error> {
        self.backend.absorb(&other.snapshot())?;
        // Snapshots do not carry unobserved mass; fold it in by hand so a
        // merge of lossy engines stays sound.
        self.unobserved = self.unobserved.saturating_add(other.unobserved);
        Ok(())
    }

    /// Serializes the engine's snapshot to JSON.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let e = EngineConfig::new(AlgoKind::SpaceSaving).counters(4).build::<u64>().unwrap();
    /// assert!(e.to_json().unwrap().contains("space_saving"));
    /// ```
    pub fn to_json(&self) -> Result<String, Error>
    where
        I: Serialize,
    {
        Ok(serde_json::to_string(&self.snapshot())?)
    }

    /// Rehydrates an engine from [`Engine::to_json`] output.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, Engine, EngineConfig};
    /// let mut e = EngineConfig::new(AlgoKind::Frequent).counters(4).build::<u64>().unwrap();
    /// e.update_batch(&[1, 1, 2]);
    /// let back: Engine<u64> = Engine::from_json(&e.to_json().unwrap()).unwrap();
    /// assert_eq!(back.estimate(&1), e.estimate(&1));
    /// ```
    pub fn from_json(json: &str) -> Result<Self, Error>
    where
        I: Deserialize,
    {
        let snap: Snapshot<I> = serde_json::from_str(json)?;
        Self::from_snapshot(snap)
    }
}

impl<I: EngineItem> FrequencyEstimator<I> for Engine<I> {
    fn name(&self) -> &'static str {
        self.backend.name()
    }

    fn capacity(&self) -> usize {
        self.backend.capacity()
    }

    // The four ingest entry points route through the inherent methods so
    // the IngestStats accounting is single-sourced: an engine driven
    // through the trait (check_tail, merge_k_sparse, TopKMonitor…) counts
    // exactly like one driven directly.
    fn update(&mut self, item: I) {
        Engine::update(self, item)
    }

    fn update_by(&mut self, item: I, count: u64) {
        Engine::update_by(self, item, count)
    }

    fn update_batch(&mut self, items: &[I]) {
        Engine::update_batch(self, items)
    }

    fn update_many(&mut self, chunks: &[&[I]]) {
        Engine::update_many(self, chunks)
    }

    fn updates_commute(&self) -> bool {
        self.backend.updates_commute()
    }

    fn estimate(&self, item: &I) -> u64 {
        self.backend.estimate(item)
    }

    fn stored_len(&self) -> usize {
        self.backend.stored_len()
    }

    fn entries(&self) -> Vec<(I, u64)> {
        self.backend.entries()
    }

    fn entries_into(&self, out: &mut Vec<(I, u64)>) {
        self.backend.entries_into(out)
    }

    fn stream_len(&self) -> u64 {
        Engine::stream_len(self)
    }

    fn bias(&self) -> Bias {
        self.backend.bias()
    }

    // The three bound queries widen by the engine's unobserved mass (see
    // `Engine::add_unobserved`): a lost occurrence could belong to any
    // item, so only the upper side of every interval moves.
    fn error_term(&self, item: &I) -> Option<u64> {
        self.backend
            .error_term(item)
            .map(|e| e.saturating_add(self.unobserved))
    }

    fn lower_estimate(&self, item: &I) -> u64 {
        self.backend.lower_estimate(item)
    }

    fn upper_estimate(&self, item: &I) -> u64 {
        self.backend
            .upper_estimate(item)
            .saturating_add(self.unobserved)
    }

    fn tail_constants(&self) -> Option<TailConstants> {
        self.backend.tail_constants()
    }
}

// ---------------------------------------------------------------------------
// The query surface
// ---------------------------------------------------------------------------

/// One reported item with its certified frequency interval.
///
/// `lower ≤ f_item ≤ upper` always holds for deterministic backends (for
/// STICKY SAMPLING the bounds are the trivial ones its probabilistic
/// guarantee allows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportEntry<I> {
    /// The item.
    pub item: I,
    /// The backend's point estimate.
    pub estimate: u64,
    /// Certified lower bound on the true frequency.
    pub lower: u64,
    /// Certified upper bound on the true frequency.
    pub upper: u64,
}

/// One reported φ-heavy hitter: a [`ReportEntry`] plus its confidence
/// label, unified across over- and under-estimating backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyHitterEntry<I> {
    /// The item.
    pub item: I,
    /// The backend's point estimate.
    pub estimate: u64,
    /// Certified lower bound on the true frequency.
    pub lower: u64,
    /// Certified upper bound on the true frequency.
    pub upper: u64,
    /// Guaranteed (`lower > φF1`) or merely potential (`upper > φF1`).
    pub confidence: Confidence,
}

/// The one query surface every engine answers: top-k, φ-heavy hitters,
/// residual estimation, and per-item bound intervals.
///
/// Borrowed from [`Engine::report`]; queries never mutate the engine.
///
/// ```
/// use hh_sketches::engine::{AlgoKind, EngineConfig};
/// use hh_counters::Confidence;
///
/// let mut e = EngineConfig::new(AlgoKind::Frequent).counters(16).build::<u64>().unwrap();
/// e.update_batch(&[7, 7, 7, 7, 7, 7, 1, 2, 3, 4]);
/// let report = e.report();
/// assert_eq!(report.top_k(1)[0].item, 7);
/// // 7 carries 60% of the stream: a guaranteed 0.5-heavy hitter
/// let hh = report.heavy_hitters(0.5).unwrap();
/// assert_eq!(hh[0].item, 7);
/// assert_eq!(hh[0].confidence, Confidence::Guaranteed);
/// // residual mass after removing the top-1
/// assert_eq!(report.residual(1), 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Report<'a, I: EngineItem> {
    engine: &'a Engine<I>,
}

impl<I: EngineItem> Report<'_, I> {
    /// The certified `(lower, upper)` frequency interval for any item,
    /// stored or not.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let mut e = EngineConfig::new(AlgoKind::SpaceSaving).counters(8).build::<u64>().unwrap();
    /// e.update_batch(&[1, 1, 2]);
    /// assert_eq!(e.report().interval(&1), (2, 2)); // table not full: exact
    /// ```
    pub fn interval(&self, item: &I) -> (u64, u64) {
        (
            self.engine.lower_estimate(item),
            self.engine.upper_estimate(item),
        )
    }

    /// Every stored entry with its bound interval, sorted by decreasing
    /// estimate (ties broken by the backend's eviction order).
    pub fn entries(&self) -> Vec<ReportEntry<I>> {
        let mut pairs = Vec::new();
        let mut out = Vec::new();
        self.entries_into(&mut pairs, &mut out);
        out
    }

    /// [`Report::entries`] written into caller-owned buffers (both cleared
    /// first): `pairs` is the raw `(item, estimate)` scratch filled via the
    /// backend's allocation-free
    /// [`FrequencyEstimator::entries_into`] path, `out` receives the
    /// interval-annotated rows. Monitor/report loops that poll every few
    /// updates reuse both buffers and stop allocating per poll.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let mut e = EngineConfig::new(AlgoKind::SpaceSaving).counters(8).build::<u64>().unwrap();
    /// e.update_batch(&[5, 5, 9]);
    /// let (mut pairs, mut rows) = (Vec::new(), Vec::new());
    /// e.report().entries_into(&mut pairs, &mut rows);
    /// assert_eq!(rows[0].item, 5);
    /// ```
    pub fn entries_into(&self, pairs: &mut Vec<(I, u64)>, out: &mut Vec<ReportEntry<I>>) {
        self.engine.backend.entries_into(pairs);
        out.clear();
        out.reserve(pairs.len());
        for (item, estimate) in pairs.drain(..) {
            let (lower, upper) = self.interval(&item);
            out.push(ReportEntry {
                item,
                estimate,
                lower,
                upper,
            });
        }
    }

    /// The `k` largest entries, most frequent first (subsumes the free
    /// `topk::top_k` helper).
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let mut e = EngineConfig::new(AlgoKind::SpaceSaving).counters(8).build::<u64>().unwrap();
    /// e.update_batch(&[1, 1, 1, 2, 2, 3]);
    /// let top: Vec<u64> = e.report().top_k(2).into_iter().map(|r| r.item).collect();
    /// assert_eq!(top, vec![1, 2]);
    /// ```
    pub fn top_k(&self, k: usize) -> Vec<ReportEntry<I>> {
        let mut entries = self.entries();
        entries.truncate(k);
        entries
    }

    /// The φ-heavy-hitters query, unified across bias directions: every
    /// stored item whose certified *upper* bound exceeds `phi·F1` is
    /// returned (hence no false negatives among stored items), labelled
    /// [`Confidence::Guaranteed`] when its *lower* bound already exceeds
    /// the threshold and [`Confidence::Candidate`] otherwise.
    ///
    /// Fails with [`Error::InvalidQuery`] when `phi ∉ [0, 1)`.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig};
    /// let mut e = EngineConfig::new(AlgoKind::SpaceSaving).counters(16).build::<u64>().unwrap();
    /// e.update_batch(&[9, 9, 9, 9, 1, 2, 3, 4, 5, 6]);
    /// let hh = e.report().heavy_hitters(0.3).unwrap();
    /// assert_eq!(hh.len(), 1);
    /// assert_eq!(hh[0].item, 9);
    /// assert!(e.report().heavy_hitters(1.0).is_err());
    /// ```
    pub fn heavy_hitters(&self, phi: f64) -> Result<Vec<HeavyHitterEntry<I>>, Error> {
        if !(0.0..1.0).contains(&phi) {
            return Err(Error::InvalidQuery(format!(
                "phi must be in [0, 1), got {phi}"
            )));
        }
        let threshold = phi * self.engine.stream_len() as f64;
        Ok(self
            .entries()
            .into_iter()
            .filter(|e| e.upper as f64 > threshold)
            .map(|e| {
                let confidence = if e.lower as f64 > threshold {
                    Confidence::Guaranteed
                } else {
                    Confidence::Candidate
                };
                HeavyHitterEntry {
                    item: e.item,
                    estimate: e.estimate,
                    lower: e.lower,
                    upper: e.upper,
                    confidence,
                }
            })
            .collect())
    }

    /// The Theorem 6 estimator of the residual tail mass `F1^res(k)`: the
    /// stream length minus the mass of the k largest counters.
    pub fn residual(&self, k: usize) -> u64 {
        recovery::residual_estimate(self.engine, k)
    }
}

// ---------------------------------------------------------------------------
// Weighted engine
// ---------------------------------------------------------------------------

/// Object-safe extension for the Section 6.1 weighted backends.
trait WeightedBackend<I: EngineItem>: WeightedFrequencyEstimator<I> {
    fn lower_weight(&self, item: &I) -> f64;
    fn upper_weight(&self, item: &I) -> f64;
    fn snapshot(&self) -> Snapshot<I>;
    fn absorb(&mut self, snap: &Snapshot<I>) -> Result<(), Error>;
}

impl<I: EngineItem> WeightedBackend<I> for SpaceSavingR<I> {
    fn lower_weight(&self, item: &I) -> f64 {
        self.guaranteed_weight(item)
    }

    fn upper_weight(&self, item: &I) -> f64 {
        if self.err(item).is_some() {
            // the absorbed slack covers weight a merged-in donor may have
            // held for the item without storing it
            self.estimate_weighted(item) + self.absorbed_slack()
        } else {
            // unstored: bounded by the minimum counter, whose lazy lookup
            // needs &mut — fall back to the trivially sound total weight
            self.total_weight()
        }
    }

    fn snapshot(&self) -> Snapshot<I> {
        Snapshot::SpaceSavingR(SpaceSavingRState {
            capacity: self.capacity(),
            total_weight: self.total_weight(),
            absorbed_slack: self.absorbed_slack(),
            entries: self.entries_with_err(),
        })
    }

    fn absorb(&mut self, snap: &Snapshot<I>) -> Result<(), Error> {
        let Snapshot::SpaceSavingR(state) = snap else {
            return Err(mismatch("space_saving_r", snap));
        };
        self.absorb_parts(&state.entries, state.capacity, state.absorbed_slack);
        Ok(())
    }
}

impl<I: EngineItem> WeightedBackend<I> for FrequentR<I> {
    fn lower_weight(&self, item: &I) -> f64 {
        self.estimate_weighted(item)
    }

    fn upper_weight(&self, item: &I) -> f64 {
        self.estimate_weighted(item) + self.reductions()
    }

    fn snapshot(&self) -> Snapshot<I> {
        Snapshot::FrequentR(FrequentRState {
            capacity: self.capacity(),
            total_weight: self.total_weight(),
            reductions: self.reductions(),
            entries: self.entries_weighted(),
        })
    }

    fn absorb(&mut self, snap: &Snapshot<I>) -> Result<(), Error> {
        let Snapshot::FrequentR(state) = snap else {
            return Err(mismatch("frequent_r", snap));
        };
        self.absorb_parts(&state.entries, state.reductions, state.total_weight);
        Ok(())
    }
}

/// The uniform handle over a real-weighted backend (SPACESAVINGR or
/// FREQUENTR; Theorem 10 preserves the `A = B = 1` tail guarantee over the
/// weight vector).
///
/// ```
/// use hh_sketches::engine::{AlgoKind, EngineConfig};
///
/// let mut e = EngineConfig::new(AlgoKind::SpaceSaving)
///     .counters(8)
///     .build_weighted::<&'static str>()
///     .unwrap();
/// e.update("flow-a", 120.0);
/// e.update("flow-b", 3.5);
/// e.update("flow-a", 40.0);
/// assert_eq!(e.weighted_report().top_k(1)[0].item, "flow-a");
/// ```
pub struct WeightedEngine<I: EngineItem> {
    backend: Box<dyn WeightedBackend<I> + Send>,
    kind: AlgoKind,
}

impl<I: EngineItem> fmt::Debug for WeightedEngine<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WeightedEngine")
            .field("algo", &self.kind)
            .field("capacity", &self.backend.capacity())
            .field("stored_len", &self.backend.stored_len())
            .field("total_weight", &self.backend.total_weight())
            .finish()
    }
}

impl<I: EngineItem> WeightedEngine<I> {
    /// The algorithm this engine runs (its unweighted [`AlgoKind`]).
    pub fn algo(&self) -> AlgoKind {
        self.kind
    }

    /// Processes an arrival of `item` with weight `w ≥ 0`.
    pub fn update(&mut self, item: I, w: f64) {
        self.backend.update_weighted(item, w);
    }

    /// The point estimate of the item's total weight.
    pub fn estimate(&self, item: &I) -> f64 {
        self.backend.estimate_weighted(item)
    }

    /// The unified weighted query surface.
    pub fn weighted_report(&self) -> WeightedReport<'_, I> {
        WeightedReport { engine: self }
    }

    /// Captures the engine's full state as a portable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot<I> {
        self.backend.snapshot()
    }

    /// Rehydrates a weighted engine from a snapshot.
    ///
    /// ```
    /// use hh_sketches::engine::{AlgoKind, EngineConfig, WeightedEngine};
    /// let mut e = EngineConfig::new(AlgoKind::Frequent).counters(4).build_weighted().unwrap();
    /// e.update(1u64, 2.5);
    /// let back = WeightedEngine::from_snapshot(e.snapshot()).unwrap();
    /// assert!((back.estimate(&1) - 2.5).abs() < 1e-12);
    /// ```
    pub fn from_snapshot(snap: Snapshot<I>) -> Result<Self, Error> {
        let (kind, backend): (AlgoKind, Box<dyn WeightedBackend<I> + Send>) = match snap {
            Snapshot::SpaceSavingR(s) => (
                AlgoKind::SpaceSaving,
                Box::new(SpaceSavingR::from_parts(
                    s.capacity,
                    s.total_weight,
                    s.absorbed_slack,
                    s.entries,
                )?),
            ),
            Snapshot::FrequentR(s) => (
                AlgoKind::Frequent,
                Box::new(FrequentR::from_parts(
                    s.capacity,
                    s.total_weight,
                    s.reductions,
                    s.entries,
                )?),
            ),
            other => {
                return Err(Error::Unsupported {
                    algo: other.algo().name().to_string(),
                    operation: "rehydrating an unweighted snapshot into a WeightedEngine",
                })
            }
        };
        Ok(WeightedEngine { backend, kind })
    }

    /// Absorbs a weighted snapshot (cross-process merge; the weighted
    /// analogue of [`Engine::merge_snapshot`]).
    pub fn merge_snapshot(&mut self, snap: &Snapshot<I>) -> Result<(), Error> {
        self.backend.absorb(snap)
    }

    /// Merges another weighted engine into this one.
    pub fn merge(&mut self, other: &WeightedEngine<I>) -> Result<(), Error> {
        self.backend.absorb(&other.snapshot())
    }

    /// Serializes the engine's snapshot to JSON.
    pub fn to_json(&self) -> Result<String, Error>
    where
        I: Serialize,
    {
        Ok(serde_json::to_string(&self.snapshot())?)
    }

    /// Rehydrates a weighted engine from [`WeightedEngine::to_json`]
    /// output.
    pub fn from_json(json: &str) -> Result<Self, Error>
    where
        I: Deserialize,
    {
        let snap: Snapshot<I> = serde_json::from_str(json)?;
        Self::from_snapshot(snap)
    }
}

impl<I: EngineItem> WeightedFrequencyEstimator<I> for WeightedEngine<I> {
    fn name(&self) -> &'static str {
        self.backend.name()
    }

    fn capacity(&self) -> usize {
        self.backend.capacity()
    }

    fn update_weighted(&mut self, item: I, w: f64) {
        self.backend.update_weighted(item, w)
    }

    fn estimate_weighted(&self, item: &I) -> f64 {
        self.backend.estimate_weighted(item)
    }

    fn stored_len(&self) -> usize {
        self.backend.stored_len()
    }

    fn entries_weighted(&self) -> Vec<(I, f64)> {
        self.backend.entries_weighted()
    }

    fn total_weight(&self) -> f64 {
        self.backend.total_weight()
    }

    fn tail_constants(&self) -> Option<TailConstants> {
        self.backend.tail_constants()
    }
}

/// One reported item of a weighted query, with its certified weight
/// interval.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedReportEntry<I> {
    /// The item.
    pub item: I,
    /// The backend's point estimate of its total weight.
    pub estimate: f64,
    /// Certified lower bound on the true weight.
    pub lower: f64,
    /// Certified upper bound on the true weight.
    pub upper: f64,
}

/// One reported weighted φ-heavy hitter.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedHeavyHitterEntry<I> {
    /// The item.
    pub item: I,
    /// The backend's point estimate of its total weight.
    pub estimate: f64,
    /// Certified lower bound on the true weight.
    pub lower: f64,
    /// Certified upper bound on the true weight.
    pub upper: f64,
    /// Guaranteed or merely potential.
    pub confidence: Confidence,
}

/// The weighted twin of [`Report`]: top-k, φ-heavy hitters, residual and
/// per-item intervals over total weights.
///
/// ```
/// use hh_sketches::engine::{AlgoKind, EngineConfig};
/// use hh_counters::Confidence;
///
/// let mut e = EngineConfig::new(AlgoKind::SpaceSaving).counters(8).build_weighted().unwrap();
/// e.update(1u64, 70.0);
/// e.update(2, 20.0);
/// e.update(3, 10.0);
/// let hh = e.weighted_report().heavy_hitters(0.5).unwrap();
/// assert_eq!(hh.len(), 1);
/// assert_eq!((hh[0].item, hh[0].confidence), (1, Confidence::Guaranteed));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WeightedReport<'a, I: EngineItem> {
    engine: &'a WeightedEngine<I>,
}

impl<I: EngineItem> WeightedReport<'_, I> {
    /// The certified `(lower, upper)` weight interval for any item.
    pub fn interval(&self, item: &I) -> (f64, f64) {
        (
            self.engine.backend.lower_weight(item),
            self.engine.backend.upper_weight(item),
        )
    }

    /// Every stored entry with its weight interval, heaviest first.
    pub fn entries(&self) -> Vec<WeightedReportEntry<I>> {
        self.engine
            .backend
            .entries_weighted()
            .into_iter()
            .map(|(item, estimate)| {
                let (lower, upper) = self.interval(&item);
                WeightedReportEntry {
                    item,
                    estimate,
                    lower,
                    upper,
                }
            })
            .collect()
    }

    /// The `k` heaviest entries.
    pub fn top_k(&self, k: usize) -> Vec<WeightedReportEntry<I>> {
        let mut entries = self.entries();
        entries.truncate(k);
        entries
    }

    /// The weighted φ-heavy-hitters query (threshold `phi` of the total
    /// weight), with the same no-false-negative/labelling contract as
    /// [`Report::heavy_hitters`].
    pub fn heavy_hitters(&self, phi: f64) -> Result<Vec<WeightedHeavyHitterEntry<I>>, Error> {
        if !(0.0..1.0).contains(&phi) {
            return Err(Error::InvalidQuery(format!(
                "phi must be in [0, 1), got {phi}"
            )));
        }
        let threshold = phi * self.engine.backend.total_weight();
        Ok(self
            .entries()
            .into_iter()
            .filter(|e| e.upper > threshold)
            .map(|e| {
                let confidence = if e.lower > threshold {
                    Confidence::Guaranteed
                } else {
                    Confidence::Candidate
                };
                WeightedHeavyHitterEntry {
                    item: e.item,
                    estimate: e.estimate,
                    lower: e.lower,
                    upper: e.upper,
                    confidence,
                }
            })
            .collect())
    }

    /// The weighted Theorem 6 residual estimator: total weight minus the
    /// mass of the k heaviest counters.
    pub fn residual(&self, k: usize) -> f64 {
        recovery::residual_estimate_weighted(self.engine, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<u64> {
        (0..2000).map(|i| (i * i + 7 * i) % 53).collect()
    }

    #[test]
    fn every_algo_builds_and_ingests() {
        for algo in AlgoKind::ALL {
            let mut e = EngineConfig::new(algo)
                .counters(64)
                .seed(5)
                .build::<u64>()
                .expect("builds");
            e.update_batch(&stream());
            assert_eq!(e.stream_len(), 2000, "{algo}");
            assert_eq!(e.algo(), algo);
            assert!(!e.report().top_k(3).is_empty(), "{algo}");
        }
    }

    #[test]
    fn intervals_bracket_truth_for_deterministic_backends() {
        let s = stream();
        let exact = |i: u64| s.iter().filter(|&&x| x == i).count() as u64;
        for algo in [
            AlgoKind::SpaceSaving,
            AlgoKind::Frequent,
            AlgoKind::LossyCounting,
            AlgoKind::CountMin,
        ] {
            let mut e = EngineConfig::new(algo).counters(64).build::<u64>().unwrap();
            e.update_batch(&s);
            let report = e.report();
            for i in 0..53u64 {
                let (lo, hi) = report.interval(&i);
                let f = exact(i);
                assert!(
                    lo <= f && f <= hi,
                    "{algo} item {i}: {f} not in [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn heavy_hitters_match_free_functions() {
        use hh_counters::{frequent_heavy_hitters, spacesaving_heavy_hitters};
        let mut s = vec![1u64; 300];
        s.extend(std::iter::repeat_n(2u64, 150));
        s.extend((0..30u64).flat_map(|i| std::iter::repeat_n(100 + i, 10)));

        let mut ss = SpaceSaving::new(16);
        ss.update_batch(&s);
        let mut engine = EngineConfig::new(AlgoKind::SpaceSaving)
            .counters(16)
            .build::<u64>()
            .unwrap();
        engine.update_batch(&s);
        let via_engine = engine.report().heavy_hitters(0.15).unwrap();
        let via_free = spacesaving_heavy_hitters(&ss, 0.15);
        assert_eq!(via_engine.len(), via_free.len());
        for (a, b) in via_engine.iter().zip(&via_free) {
            assert_eq!(
                (a.item, a.estimate, a.confidence),
                (b.item, b.estimate, b.confidence)
            );
        }

        let mut fr = Frequent::new(16);
        fr.update_batch(&s);
        let mut engine = EngineConfig::new(AlgoKind::Frequent)
            .counters(16)
            .build::<u64>()
            .unwrap();
        engine.update_batch(&s);
        let via_engine = engine.report().heavy_hitters(0.15).unwrap();
        let via_free = frequent_heavy_hitters(&fr, 0.15);
        assert_eq!(via_engine.len(), via_free.len());
        for (a, b) in via_engine.iter().zip(&via_free) {
            assert_eq!(
                (a.item, a.estimate, a.confidence),
                (b.item, b.estimate, b.confidence)
            );
        }
    }

    #[test]
    fn snapshot_roundtrips_for_every_algo() {
        for algo in AlgoKind::ALL {
            let mut e = EngineConfig::new(algo)
                .counters(48)
                .seed(11)
                .build::<u64>()
                .unwrap();
            e.update_batch(&stream());
            let json = e.to_json().expect("serialize");
            let mut back: Engine<u64> = Engine::from_json(&json).expect("deserialize");
            assert_eq!(back.algo(), algo);
            assert_eq!(back.stream_len(), e.stream_len());
            for i in 0..53u64 {
                assert_eq!(back.estimate(&i), e.estimate(&i), "{algo} item {i}");
                assert_eq!(
                    back.report().interval(&i),
                    e.report().interval(&i),
                    "{algo} item {i} interval"
                );
            }
            // restored engines continue identically (incl. RNG state)
            let suffix: Vec<u64> = (0..500).map(|i| (i * 13) % 61).collect();
            e.update_batch(&suffix);
            back.update_batch(&suffix);
            for i in 0..61u64 {
                assert_eq!(back.estimate(&i), e.estimate(&i), "{algo} after resume");
            }
        }
    }

    #[test]
    fn merge_rejects_cross_algo() {
        let mut a = EngineConfig::new(AlgoKind::SpaceSaving)
            .counters(8)
            .build::<u64>()
            .unwrap();
        let b = EngineConfig::new(AlgoKind::Frequent)
            .counters(8)
            .build::<u64>()
            .unwrap();
        assert!(matches!(a.merge(&b), Err(Error::SnapshotMismatch { .. })));
    }

    #[test]
    fn sketch_merge_is_cellwise() {
        let config = EngineConfig::new(AlgoKind::CountMin).counters(128).seed(9);
        let mut a = config.build::<u64>().unwrap();
        let mut b = config.build::<u64>().unwrap();
        let mut whole = config.build::<u64>().unwrap();
        for i in 0..600u64 {
            let x = i % 37;
            if i % 2 == 0 {
                a.update(x);
            } else {
                b.update(x);
            }
            whole.update(x);
        }
        a.merge(&b).expect("same config");
        assert_eq!(a.stream_len(), 600);
        for i in 0..37u64 {
            assert_eq!(a.estimate(&i), whole.estimate(&i), "CM merge linearity");
        }
        // differently-seeded sketches refuse to merge
        let other = EngineConfig::new(AlgoKind::CountMin)
            .counters(128)
            .seed(10)
            .build::<u64>()
            .unwrap();
        assert!(a.merge(&other).is_err());
    }

    #[test]
    fn weighted_engine_roundtrip_and_merge() {
        for algo in [AlgoKind::SpaceSaving, AlgoKind::Frequent] {
            let config = EngineConfig::new(algo).counters(8);
            let mut a = config.build_weighted::<u64>().unwrap();
            a.update(1, 5.0);
            a.update(2, 2.5);
            let back = WeightedEngine::from_json(&a.to_json().unwrap()).unwrap();
            assert!((back.estimate(&1) - a.estimate(&1)).abs() < 1e-12, "{algo}");
            let mut b = config.build_weighted::<u64>().unwrap();
            b.update(1, 3.0);
            a.merge(&b).unwrap();
            assert!(a.estimate(&1) >= 8.0 - 1e-9, "{algo}");
        }
    }

    #[test]
    fn weighted_and_unweighted_snapshots_do_not_cross() {
        let e = EngineConfig::new(AlgoKind::SpaceSaving)
            .counters(4)
            .build::<u64>()
            .unwrap();
        assert!(WeightedEngine::from_snapshot(e.snapshot()).is_err());
        let w = EngineConfig::new(AlgoKind::SpaceSaving)
            .counters(4)
            .build_weighted::<u64>()
            .unwrap();
        assert!(Engine::from_snapshot(w.snapshot()).is_err());
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let snap = Snapshot::SpaceSaving(SpaceSavingState {
            capacity: 2,
            stream_len: 100, // inconsistent with entries
            absorbed_slack: 0,
            entries: vec![(1u64, 3, 0)],
        });
        assert!(matches!(
            Engine::from_snapshot(snap),
            Err(Error::CorruptSnapshot(_))
        ));
        let snap = Snapshot::Frequent(FrequentState {
            capacity: 1,
            stream_len: 10,
            decrements: 0,
            entries: vec![(1u64, 3), (2, 2)],
        });
        assert!(Engine::from_snapshot(snap).is_err());
    }

    #[test]
    fn count_sketch_hash_revision_mismatch_is_rejected() {
        let mut e = EngineConfig::new(AlgoKind::CountSketch)
            .counters(64)
            .build::<u64>()
            .unwrap();
        e.update_batch(&[1, 1, 2]);
        let Snapshot::CountSketch(mut state) = e.snapshot() else {
            panic!("count-sketch snapshot expected");
        };
        assert_eq!(state.hash_rev, CS_HASH_REV);
        state.hash_rev = CS_HASH_REV - 1; // cells from an older derivation
        let stale = Snapshot::CountSketch(state);
        assert!(matches!(
            Engine::from_snapshot(stale.clone()),
            Err(Error::CorruptSnapshot(_))
        ));
        assert!(matches!(
            e.merge_snapshot(&stale),
            Err(Error::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn capacity_specs_validate() {
        assert!(EngineConfig::new(AlgoKind::SpaceSaving)
            .counters(0)
            .build::<u64>()
            .is_err());
        assert!(EngineConfig::new(AlgoKind::SpaceSaving)
            .error_rate(1.5, 4)
            .build::<u64>()
            .is_err());
        assert!(EngineConfig::new(AlgoKind::SpaceSaving)
            .heavy_hitter_phi(0.0)
            .build::<u64>()
            .is_err());
        assert!(EngineConfig::new(AlgoKind::CountMin)
            .counters(8) // below the 16-cell sketch minimum
            .build::<u64>()
            .is_err());
    }

    #[test]
    fn string_items_roundtrip() {
        let mut e = EngineConfig::new(AlgoKind::SpaceSaving)
            .counters(4)
            .build::<String>()
            .unwrap();
        for w in ["the", "cat", "the", "hat", "the"] {
            e.update(w.to_string());
        }
        let back: Engine<String> = Engine::from_json(&e.to_json().unwrap()).unwrap();
        assert_eq!(back.estimate(&"the".to_string()), 3);
    }
}
