//! Heavy-hitter candidate tracking for sketches.
//!
//! A sketch answers point queries but cannot enumerate the heavy items. The
//! standard remedy (and what any fair counter-vs-sketch comparison must
//! charge the sketch for) is to maintain a bounded candidate set alongside:
//! after each update, re-estimate the item and keep the `cap` items with
//! the largest current estimates. [`SketchHeavyHitters`] wraps any
//! [`FrequencyEstimator`] this way, making sketches usable wherever the
//! experiments expect an `entries()`-capable summary.

use std::hash::Hash;

use hh_counters::error::Error;
use hh_counters::fasthash::FxHashMap;
use hh_counters::traits::{for_each_run, Bias, FrequencyEstimator};

/// A sketch plus a bounded candidate set of likely heavy hitters.
#[derive(Debug, Clone)]
pub struct SketchHeavyHitters<I: Eq + Hash + Clone, S> {
    sketch: S,
    candidates: FxHashMap<I, u64>,
    cap: usize,
    /// Reused batched-ingest aggregation buffer: `(first position, count)`
    /// per run, sorted by item so a batch costs one sketch update and one
    /// candidate refresh per *distinct* item when the sketch commutes.
    agg_scratch: Vec<(usize, u64)>,
}

impl<I: Eq + Hash + Clone + Ord, S: FrequencyEstimator<I>> SketchHeavyHitters<I, S> {
    /// Wraps `sketch`, tracking up to `cap` candidate items.
    pub fn new(sketch: S, cap: usize) -> Self {
        assert!(cap >= 1);
        SketchHeavyHitters {
            sketch,
            candidates: FxHashMap::default(),
            cap,
            agg_scratch: Vec::new(),
        }
    }

    /// The wrapped sketch.
    pub fn sketch(&self) -> &S {
        &self.sketch
    }

    /// Number of candidate slots (`cap`), i.e. the extra space beyond the
    /// sketch itself.
    pub fn candidate_cap(&self) -> usize {
        self.cap
    }

    /// The candidate items currently tracked, in descending-estimate order
    /// (snapshot capture; the cached estimates are re-derived from the
    /// sketch on restore).
    pub fn candidate_items(&self) -> Vec<I> {
        self.entries().into_iter().map(|(i, _)| i).collect()
    }

    /// Rebuilds a tracker from snapshot parts: the (already restored)
    /// sketch, the candidate items, and the candidate capacity. Cached
    /// candidate estimates are refreshed from the sketch.
    ///
    /// Returns [`Error::CorruptSnapshot`] when `cap` is zero, there are
    /// more candidates than `cap`, or a candidate repeats.
    pub fn from_parts(sketch: S, candidates: Vec<I>, cap: usize) -> Result<Self, Error> {
        if cap == 0 {
            return Err(Error::corrupt_snapshot("candidate cap must be positive"));
        }
        if candidates.len() > cap {
            return Err(Error::corrupt_snapshot(format!(
                "{} candidates exceed cap {cap}",
                candidates.len()
            )));
        }
        let mut map = FxHashMap::default();
        for item in candidates {
            let est = sketch.estimate(&item);
            if map.insert(item, est).is_some() {
                return Err(Error::corrupt_snapshot("duplicate candidate in snapshot"));
            }
        }
        Ok(SketchHeavyHitters {
            sketch,
            candidates: map,
            cap,
            agg_scratch: Vec::new(),
        })
    }

    /// Merges another tracker into this one: sketches are merged by
    /// `merge_sketch`, then the candidate union is re-ranked under the
    /// merged estimates and truncated to `cap`.
    pub fn merge_from(
        &mut self,
        other: &SketchHeavyHitters<I, S>,
        merge_sketch: impl FnOnce(&mut S, &S) -> Result<(), Error>,
    ) -> Result<(), Error> {
        merge_sketch(&mut self.sketch, &other.sketch)?;
        let mut union: Vec<I> = self.candidates.keys().cloned().collect();
        for item in other.candidates.keys() {
            if !self.candidates.contains_key(item) {
                union.push(item.clone());
            }
        }
        let mut ranked: Vec<(I, u64)> = union
            .into_iter()
            .map(|i| {
                let e = self.sketch.estimate(&i);
                (i, e)
            })
            .collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(self.cap);
        self.candidates = ranked.into_iter().collect();
        Ok(())
    }

    fn refresh_candidate(&mut self, item: I) {
        let est = self.sketch.estimate(&item);
        if let Some(v) = self.candidates.get_mut(&item) {
            *v = est;
            return;
        }
        if self.candidates.len() < self.cap {
            self.candidates.insert(item, est);
            return;
        }
        // replace the weakest candidate if strictly improved upon
        let (weakest, weakest_est) = self
            .candidates
            .iter()
            .min_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(i, &e)| (i.clone(), e))
            // lint:allow(panic-freedom) unreachable: this branch runs only when the tracker is at capacity, and constructors reject cap == 0
            .expect("cap >= 1");
        if est > weakest_est {
            self.candidates.remove(&weakest);
            self.candidates.insert(item, est);
        }
    }
}

impl<I: Eq + Hash + Clone + Ord, S: FrequencyEstimator<I>> FrequencyEstimator<I>
    for SketchHeavyHitters<I, S>
{
    fn name(&self) -> &'static str {
        self.sketch.name()
    }

    /// Total space: sketch cells plus candidate slots.
    fn capacity(&self) -> usize {
        self.sketch.capacity() + self.cap
    }

    fn update_by(&mut self, item: I, count: u64) {
        if count == 0 {
            return;
        }
        self.sketch.update_by(item.clone(), count);
        self.refresh_candidate(item);
    }

    /// Batched ingest.
    ///
    /// When the wrapped sketch's updates commute (classic Count-Min,
    /// Count-Sketch), the batch is pre-aggregated by *item*: run-length
    /// collapse into a reused `(position, count)` scratch, sort by item,
    /// merge, then one weighted sketch update and one candidate refresh per
    /// distinct item. The sketch ends in exactly the per-element state;
    /// candidate admissions are decided against the batch-final estimates
    /// (the candidate heap is a heuristic whose refresh order within a
    /// batch is unspecified — see `docs/PERFORMANCE.md`).
    ///
    /// Order-sensitive sketches (conservative Count-Min) fall back to
    /// run-length aggregation, which is exactly equivalent to the
    /// per-element loop: within a run only the run's own item changes,
    /// estimates only grow, and the admission decision made once with the
    /// full run applied matches the per-element sequence's final decision.
    fn update_batch(&mut self, items: &[I]) {
        if self.sketch.updates_commute() {
            let mut agg = std::mem::take(&mut self.agg_scratch);
            agg.clear();
            let mut i = 0;
            while i < items.len() {
                let start = i;
                let item = &items[i];
                while i < items.len() && items[i] == *item {
                    i += 1;
                }
                agg.push((start, (i - start) as u64));
            }
            // unstable sort: equal-item runs merge below, so their relative
            // order is irrelevant — and unlike the stable sort this one
            // does not allocate a merge buffer per batch
            agg.sort_unstable_by(|&(a, _), &(b, _)| items[a].cmp(&items[b]));
            let mut j = 0;
            while j < agg.len() {
                let (pos, mut count) = agg[j];
                let item = &items[pos];
                j += 1;
                while j < agg.len() && items[agg[j].0] == *item {
                    count += agg[j].1;
                    j += 1;
                }
                self.sketch.update_by(item.clone(), count);
                self.refresh_candidate(item.clone());
            }
            self.agg_scratch = agg;
        } else {
            for_each_run(items, |item, run| {
                self.sketch.update_by(item.clone(), run);
                self.refresh_candidate(item.clone());
            });
        }
    }

    fn estimate(&self, item: &I) -> u64 {
        self.sketch.estimate(item)
    }

    fn stored_len(&self) -> usize {
        self.candidates.len()
    }

    /// Candidates with their *current* sketch estimates, sorted descending.
    fn entries(&self) -> Vec<(I, u64)> {
        let mut v = Vec::new();
        self.entries_into(&mut v);
        v
    }

    /// Allocation-free variant: re-estimates the candidates into the
    /// caller's buffer.
    fn entries_into(&self, out: &mut Vec<(I, u64)>) {
        out.clear();
        out.reserve(self.candidates.len());
        out.extend(
            self.candidates
                .keys()
                .map(|i| (i.clone(), self.sketch.estimate(i))),
        );
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    }

    fn stream_len(&self) -> u64 {
        self.sketch.stream_len()
    }

    fn bias(&self) -> Bias {
        self.sketch.bias()
    }

    fn error_term(&self, item: &I) -> Option<u64> {
        self.sketch.error_term(item)
    }

    fn lower_estimate(&self, item: &I) -> u64 {
        self.sketch.lower_estimate(item)
    }

    fn upper_estimate(&self, item: &I) -> u64 {
        self.sketch.upper_estimate(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_min::{CountMin, UpdateRule};

    #[test]
    fn tracks_heavy_items() {
        let cm: CountMin<u64> = CountMin::new(4, 512, 1, UpdateRule::Classic);
        let mut hh = SketchHeavyHitters::new(cm, 5);
        // 3 heavy items in light noise
        for round in 0..200u64 {
            for heavy in [1u64, 2, 3] {
                hh.update(heavy);
            }
            hh.update(1000 + round); // singleton noise
        }
        let top: Vec<u64> = hh.entries().iter().take(3).map(|&(i, _)| i).collect();
        assert!(
            top.contains(&1) && top.contains(&2) && top.contains(&3),
            "{top:?}"
        );
    }

    #[test]
    fn candidate_set_bounded() {
        let cm: CountMin<u64> = CountMin::new(3, 128, 2, UpdateRule::Classic);
        let mut hh = SketchHeavyHitters::new(cm, 4);
        for i in 0..1000u64 {
            hh.update(i);
        }
        assert!(hh.stored_len() <= 4);
    }

    #[test]
    fn capacity_charges_for_candidates() {
        let cm: CountMin<u64> = CountMin::new(2, 10, 0, UpdateRule::Classic);
        let hh = SketchHeavyHitters::new(cm, 7);
        assert_eq!(hh.capacity(), 27);
    }
}
