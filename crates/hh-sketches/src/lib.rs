//! Sketch-based frequency estimation baselines.
//!
//! The randomized comparators from Table 1 of *Space-optimal Heavy Hitters
//! with Strong Error Bounds* (PODS 2009): the Count-Min sketch (plus its
//! conservative-update variant) and the Count-Sketch, together with the
//! candidate-tracking wrapper that lets sketches report heavy hitters at a
//! fair space accounting.
//!
//! Sketches allow deletions and arbitrary linear updates — abilities the
//! counter algorithms lack — but as the paper proves (and the experiments
//! in this repository reproduce), counters dominate sketches on
//! insertion-only heavy-hitter workloads at equal space.
//!
//! All hash functions are implemented in-crate ([`hash`]): seeded
//! polynomial hashing over the Mersenne prime `2^61 − 1`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod count_min;
pub mod count_sketch;
pub mod dyadic;
pub mod engine;
pub mod hash;
pub mod pipeline;
pub mod topk_tracker;

pub use count_min::{CountMin, UpdateRule};
pub use count_sketch::CountSketch;
pub use dyadic::DyadicCountMin;
pub use engine::{
    AlgoKind, CapacitySpec, Engine, EngineConfig, IngestStats, Report, Snapshot, WeightedEngine,
};
pub use pipeline::{Pipeline, PipelineConfig, PipelineStats, Routing, ShardIngest, ShardStats};
pub use topk_tracker::SketchHeavyHitters;
