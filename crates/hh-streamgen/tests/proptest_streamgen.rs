//! Property-based tests on the workload substrate: frequency statistics,
//! Zipf vector construction, and stream materialization.

use proptest::collection::vec;
use proptest::prelude::*;

use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, zeta, ExactCounter, Freqs};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn freqs_head_plus_residual_is_f1(counts in vec(0u64..1000, 0..50), k in 0usize..60) {
        let f = Freqs::from_counts(counts.clone());
        prop_assert_eq!(f.head1(k) + f.res1(k), f.f1());
    }

    #[test]
    fn residual_monotone_in_k(counts in vec(0u64..1000, 0..50)) {
        let f = Freqs::from_counts(counts);
        for k in 0..f.distinct() {
            prop_assert!(f.res1(k + 1) <= f.res1(k));
        }
    }

    #[test]
    fn residual_p_consistent_with_p1(counts in vec(1u64..500, 1..30), k in 0usize..30) {
        let f = Freqs::from_counts(counts);
        let via_p = f.res_p(k, 1.0);
        prop_assert!((via_p - f.res1(k) as f64).abs() < 1e-6 * (f.f1() as f64).max(1.0));
    }

    #[test]
    fn zeta_is_monotone_in_n_and_antitone_in_alpha(n in 1usize..200, alpha in 0.5f64..3.0) {
        prop_assert!(zeta(n + 1, alpha) > zeta(n, alpha));
        prop_assert!(zeta(n, alpha + 0.25) <= zeta(n, alpha));
    }

    #[test]
    fn exact_zipf_sums_and_sorted(n in 1usize..200, total in 1u64..50_000, alpha in 0.0f64..3.0) {
        let f = exact_zipf_counts(n, total, alpha);
        prop_assert_eq!(f.len(), n);
        prop_assert_eq!(f.iter().sum::<u64>(), total);
        prop_assert!(f.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn all_orderings_realize_the_same_frequencies(
        counts in vec(0u64..40, 0..20),
        seed in 0u64..1000
    ) {
        let orders = [
            StreamOrder::Shuffled(seed),
            StreamOrder::BlocksAscending,
            StreamOrder::BlocksDescending,
            StreamOrder::RoundRobin,
        ];
        for order in orders {
            let s = stream_from_counts(&counts, order);
            let oracle = ExactCounter::from_stream(&s);
            for (i, &c) in counts.iter().enumerate() {
                prop_assert_eq!(oracle.count(&((i + 1) as u64)), c, "{:?}", order);
            }
            prop_assert_eq!(s.len() as u64, counts.iter().sum::<u64>());
        }
    }

    #[test]
    fn oracle_top_k_is_sorted_and_consistent(stream in vec(1u64..30, 0..200), k in 0usize..12) {
        let oracle = ExactCounter::from_stream(&stream);
        let top = oracle.top_k(k);
        prop_assert!(top.len() <= k);
        prop_assert!(top.windows(2).all(|w| w[0].1 >= w[1].1), "sorted by count");
        for (item, c) in &top {
            prop_assert_eq!(oracle.count(item), *c);
        }
        // top-k sum equals head1(k)
        let sum: u64 = top.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(sum, oracle.freqs().head1(k));
    }

    #[test]
    fn coverage_is_antitone_in_fraction(counts in vec(1u64..100, 1..30)) {
        let f = Freqs::from_counts(counts);
        prop_assert!(f.coverage(0.3) <= f.coverage(0.7));
        prop_assert!(f.coverage(0.7) <= f.coverage(1.0));
    }
}
