//! Zipfian frequency vectors and streams (Section 5 of the paper).
//!
//! The paper's Theorem 8 assumes frequencies `f_i = N / (i^α ζ(α))` with
//! `ζ(α) = Σ_{i=1}^n i^{-α}` (a *truncated* zeta normalizer over the n
//! distinct items, exactly as defined in the paper — not the infinite Riemann
//! zeta). [`exact_zipf_counts`] constructs integer frequency vectors that
//! follow this law as closely as rounding allows, which is what the
//! Theorem 8 / Theorem 9 experiments need. [`ZipfSampler`] instead samples
//! i.i.d. from the Zipf distribution, which is the realistic-workload mode
//! used by the motivating experiments.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::Zipf;

use crate::Item;

/// The truncated zeta normalizer `ζ(α) = Σ_{i=1}^n i^{-α}` from the paper.
pub fn zeta(n: usize, alpha: f64) -> f64 {
    assert!(n > 0, "zeta needs at least one term");
    (1..=n).map(|i| (i as f64).powf(-alpha)).sum()
}

/// Builds the exact-Zipf integer frequency vector: `n` items whose
/// frequencies follow `f_i ≈ N / (i^α ζ(α))`, largest first.
///
/// Rounding is done by largest-remainder so that the returned vector sums to
/// exactly `total` (unless `total < n` forces zero entries, which are kept so
/// the index still identifies the rank). The vector is non-increasing.
///
/// ```
/// let f = hh_streamgen::exact_zipf_counts(100, 10_000, 1.2);
/// assert_eq!(f.iter().sum::<u64>(), 10_000);
/// assert!(f.windows(2).all(|w| w[0] >= w[1]));
/// ```
pub fn exact_zipf_counts(n: usize, total: u64, alpha: f64) -> Vec<u64> {
    assert!(n > 0, "need at least one item");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    let z = zeta(n, alpha);
    // Ideal real-valued frequencies.
    let ideal: Vec<f64> = (1..=n)
        .map(|i| total as f64 / ((i as f64).powf(alpha) * z))
        .collect();
    // Largest-remainder rounding preserving the exact total.
    let mut counts: Vec<u64> = ideal.iter().map(|&x| x.floor() as u64).collect();
    let assigned: u64 = counts.iter().sum();
    let mut leftover = total - assigned.min(total);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| {
        let ra = ideal[a] - ideal[a].floor();
        let rb = ideal[b] - ideal[b].floor();
        rb.total_cmp(&ra).then(a.cmp(&b))
    });
    let mut idx = 0;
    while leftover > 0 {
        counts[order[idx % n]] += 1;
        idx += 1;
        leftover -= 1;
    }
    // Largest-remainder can break monotonicity by at most 1 between adjacent
    // ranks; restore it (the paper's analysis needs f_1 >= f_2 >= ...).
    counts.sort_unstable_by(|a, b| b.cmp(a));
    counts
}

/// How the occurrences of a frequency vector are laid out in the stream.
///
/// The paper's guarantees hold for *any* ordering (in contrast to
/// `LossyCounting`'s random-order analysis, see Section 1.1), so experiments
/// sweep these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOrder {
    /// Uniformly random permutation of all occurrences (seeded).
    Shuffled(u64),
    /// All occurrences of the most frequent item first, then the next, etc.
    BlocksDescending,
    /// All occurrences of the least frequent item first, then the next, etc.
    /// Hard for algorithms that commit early to heavy items.
    BlocksAscending,
    /// Round-robin over the items still having occurrences left. Spreads
    /// every item as thin as possible; hard for window-based pruning
    /// (LossyCounting).
    RoundRobin,
}

/// Materializes a stream realizing the given frequency vector.
///
/// Item ids are `1..=counts.len()` (matching the paper's convention that
/// item `i` is the `i`-th most frequent when `counts` is sorted descending).
/// Items with zero count simply never occur.
pub fn stream_from_counts(counts: &[u64], order: StreamOrder) -> Vec<Item> {
    let total: u64 = counts.iter().sum();
    let mut stream: Vec<Item> = Vec::with_capacity(total as usize);
    match order {
        StreamOrder::BlocksDescending => {
            for (i, &c) in counts.iter().enumerate() {
                stream.extend(std::iter::repeat_n((i + 1) as Item, c as usize));
            }
        }
        StreamOrder::BlocksAscending => {
            for (i, &c) in counts.iter().enumerate().rev() {
                stream.extend(std::iter::repeat_n((i + 1) as Item, c as usize));
            }
        }
        StreamOrder::RoundRobin => {
            let mut remaining: Vec<u64> = counts.to_vec();
            let mut alive = true;
            while alive {
                alive = false;
                for (i, r) in remaining.iter_mut().enumerate() {
                    if *r > 0 {
                        stream.push((i + 1) as Item);
                        *r -= 1;
                        alive = true;
                    }
                }
            }
        }
        StreamOrder::Shuffled(seed) => {
            for (i, &c) in counts.iter().enumerate() {
                stream.extend(std::iter::repeat_n((i + 1) as Item, c as usize));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            stream.shuffle(&mut rng);
        }
    }
    stream
}

/// I.i.d. sampler from the Zipf distribution over `1..=n` with exponent
/// `alpha`.
///
/// Samples are item ids; smaller ids are more frequent. Backed by
/// `rand_distr::Zipf` (rejection sampling) with a seeded `StdRng`.
#[derive(Debug)]
pub struct ZipfSampler {
    rng: StdRng,
    dist: Zipf<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with exponent `alpha > 0`.
    pub fn new(n: usize, alpha: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "rand_distr::Zipf requires finite alpha > 0"
        );
        ZipfSampler {
            rng: StdRng::seed_from_u64(seed),
            // lint:allow(panic-freedom) unreachable: the asserts above cover Zipf::new's exact failure domain (n >= 1, finite alpha > 0)
            dist: Zipf::new(n as u64, alpha).expect("valid Zipf parameters"),
        }
    }

    /// Draws one item id in `1..=n`.
    pub fn sample(&mut self) -> Item {
        self.rng.sample(self.dist) as Item
    }

    /// Draws a stream of `len` items.
    pub fn stream(&mut self, len: usize) -> Vec<Item> {
        (0..len).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactCounter;

    #[test]
    fn zeta_small_values() {
        assert!((zeta(1, 1.0) - 1.0).abs() < 1e-12);
        assert!((zeta(2, 1.0) - 1.5).abs() < 1e-12);
        assert!((zeta(3, 2.0) - (1.0 + 0.25 + 1.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    fn exact_zipf_sums_to_total() {
        for &alpha in &[0.5, 1.0, 1.5, 2.0] {
            let f = exact_zipf_counts(50, 12_345, alpha);
            assert_eq!(f.iter().sum::<u64>(), 12_345, "alpha={alpha}");
            assert!(f.windows(2).all(|w| w[0] >= w[1]), "non-increasing");
        }
    }

    #[test]
    fn exact_zipf_ratios_follow_power_law() {
        let f = exact_zipf_counts(100, 1_000_000, 1.0);
        // f_1 / f_2 should be ~2 for alpha = 1
        let ratio = f[0] as f64 / f[1] as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio={ratio}");
        let ratio4 = f[0] as f64 / f[3] as f64;
        assert!((ratio4 - 4.0).abs() < 0.1, "ratio4={ratio4}");
    }

    #[test]
    fn exact_zipf_single_item() {
        let f = exact_zipf_counts(1, 100, 1.5);
        assert_eq!(f, vec![100]);
    }

    #[test]
    fn stream_orders_preserve_frequencies() {
        let counts = vec![5u64, 3, 0, 2];
        for order in [
            StreamOrder::Shuffled(7),
            StreamOrder::BlocksDescending,
            StreamOrder::BlocksAscending,
            StreamOrder::RoundRobin,
        ] {
            let s = stream_from_counts(&counts, order);
            assert_eq!(s.len(), 10);
            let c = ExactCounter::from_stream(&s);
            assert_eq!(c.count(&1), 5);
            assert_eq!(c.count(&2), 3);
            assert_eq!(c.count(&3), 0);
            assert_eq!(c.count(&4), 2);
        }
    }

    #[test]
    fn round_robin_interleaves() {
        let s = stream_from_counts(&[2, 2], StreamOrder::RoundRobin);
        assert_eq!(s, vec![1, 2, 1, 2]);
    }

    #[test]
    fn shuffle_is_seeded_deterministic() {
        let counts = vec![4u64, 4, 4];
        let a = stream_from_counts(&counts, StreamOrder::Shuffled(42));
        let b = stream_from_counts(&counts, StreamOrder::Shuffled(42));
        let c = stream_from_counts(&counts, StreamOrder::Shuffled(43));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn sampler_is_skewed_and_deterministic() {
        let mut s1 = ZipfSampler::new(1000, 1.2, 9);
        let mut s2 = ZipfSampler::new(1000, 1.2, 9);
        let a = s1.stream(5000);
        let b = s2.stream(5000);
        assert_eq!(a, b);
        let c = ExactCounter::from_stream(&a);
        // item 1 should dominate item 100 by a wide margin
        assert!(c.count(&1) > 10 * c.count(&100).max(1) / 2);
        assert!(a.iter().all(|&x| (1..=1000).contains(&x)));
    }
}
