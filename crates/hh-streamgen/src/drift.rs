//! Non-stationary workloads: popularity drift and flash crowds.
//!
//! The paper's guarantees are worst-case over *orderings*, which includes
//! arbitrary non-stationarity; these generators stress exactly that. A
//! drifting stream rotates which items are popular over time (so early
//! heavy hitters die off), and a flash crowd injects a burst of a brand-new
//! item mid-stream (so summaries must displace established entries).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::zipf::{exact_zipf_counts, stream_from_counts, StreamOrder};
use crate::Item;

/// A stream of `phases` epochs; each epoch draws a Zipf(α) workload over a
/// *rotated* item universe, so each epoch's heavy hitters are disjoint
/// from the previous epoch's.
///
/// Items of epoch `p` are `p*n + 1 ..= p*n + n`. Total length is
/// `phases * per_phase`.
pub fn drifting_zipf(n: usize, per_phase: u64, alpha: f64, phases: usize, seed: u64) -> Vec<Item> {
    assert!(phases >= 1);
    let mut out = Vec::with_capacity((per_phase as usize) * phases);
    let counts = exact_zipf_counts(n, per_phase, alpha);
    for p in 0..phases {
        let offset = (p * n) as u64;
        let mut epoch = stream_from_counts(&counts, StreamOrder::Shuffled(seed ^ p as u64));
        for x in &mut epoch {
            *x += offset;
        }
        out.extend(epoch);
    }
    out
}

/// A background stream with a flash crowd: `background` is interrupted at
/// `at` (a fraction in `[0,1]` of its length) by `burst_len` occurrences
/// of the single brand-new item [`flash_item`], after which the background
/// resumes.
pub fn flash_crowd(background: &[Item], at: f64, burst_len: usize, seed: u64) -> Vec<Item> {
    assert!((0.0..=1.0).contains(&at));
    let cut = ((background.len() as f64) * at) as usize;
    let mut out = Vec::with_capacity(background.len() + burst_len);
    out.extend_from_slice(&background[..cut]);
    out.extend(std::iter::repeat_n(flash_item(), burst_len));
    out.extend_from_slice(&background[cut..]);
    // light shuffle *within* the burst window edges keeps it adversarialish
    // but deterministic; full shuffles would dissolve the flash semantics.
    let lo = cut.saturating_sub(burst_len / 4);
    let hi = (cut + burst_len + burst_len / 4).min(out.len());
    let mut rng = StdRng::seed_from_u64(seed);
    out[lo..hi].shuffle(&mut rng);
    out
}

/// The item id used by [`flash_crowd`] bursts (outside any generator's
/// normal universe).
pub fn flash_item() -> Item {
    u64::MAX - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactCounter;

    #[test]
    fn drift_rotates_universes() {
        let s = drifting_zipf(100, 1_000, 1.2, 3, 7);
        assert_eq!(s.len(), 3_000);
        let c = ExactCounter::from_stream(&s);
        // every epoch contributes the same frequency vector over its own ids
        assert_eq!(c.count(&1), c.count(&101));
        assert_eq!(c.count(&101), c.count(&201));
        assert!(c.count(&1) > c.count(&50));
    }

    #[test]
    fn drift_heavy_hitters_change_per_phase() {
        let s = drifting_zipf(50, 500, 1.5, 2, 1);
        let first_half = ExactCounter::from_stream(&s[..500]);
        let second_half = ExactCounter::from_stream(&s[500..]);
        assert!(first_half.count(&1) > 0);
        assert_eq!(first_half.count(&51), 0, "phase-2 items absent early");
        assert_eq!(second_half.count(&1), 0, "phase-1 items absent late");
    }

    #[test]
    fn flash_crowd_injects_burst() {
        let bg: Vec<Item> = (0..1000).map(|i| i % 20 + 1).collect();
        let s = flash_crowd(&bg, 0.5, 300, 3);
        assert_eq!(s.len(), 1300);
        let c = ExactCounter::from_stream(&s);
        assert_eq!(c.count(&flash_item()), 300);
        // background frequencies preserved
        assert_eq!(c.count(&1), 50);
    }

    #[test]
    fn flash_crowd_at_edges() {
        let bg: Vec<Item> = vec![1, 2, 3, 4];
        let head = flash_crowd(&bg, 0.0, 2, 0);
        assert_eq!(head.len(), 6);
        let tail = flash_crowd(&bg, 1.0, 2, 0);
        assert_eq!(tail.len(), 6);
        let c = ExactCounter::from_stream(&tail);
        assert_eq!(c.count(&flash_item()), 2);
    }
}
