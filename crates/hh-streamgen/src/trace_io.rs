//! Reading and writing streams as plain-text trace files.
//!
//! So experiments can run on external data (and synthetic workloads can be
//! exported for other tools): one item per line for unweighted streams,
//! `item<TAB>weight` for weighted ones. Lines starting with `#` and blank
//! lines are skipped on read.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::generators::WeightedStream;
use crate::Item;

/// Writes an unweighted stream, one item id per line.
pub fn write_stream(mut w: impl Write, stream: &[Item]) -> std::io::Result<()> {
    for &x in stream {
        writeln!(w, "{x}")?;
    }
    Ok(())
}

/// Reads an unweighted stream (one `u64` item per line; `#` comments and
/// blank lines skipped).
pub fn read_stream(r: impl Read) -> std::io::Result<Vec<Item>> {
    let mut out = Vec::new();
    for line in BufReader::new(r).lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let item: Item = t.parse().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad item {t:?}: {e}"),
            )
        })?;
        out.push(item);
    }
    Ok(out)
}

/// Writes a weighted stream, `item<TAB>weight` per line.
pub fn write_weighted(mut w: impl Write, stream: &WeightedStream) -> std::io::Result<()> {
    for &(item, weight) in &stream.updates {
        writeln!(w, "{item}\t{weight}")?;
    }
    Ok(())
}

/// Reads a weighted stream (`item<TAB or space>weight` per line).
pub fn read_weighted(r: impl Read) -> std::io::Result<WeightedStream> {
    let mut updates = Vec::new();
    for line in BufReader::new(r).lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let item: Item = parts
            .next()
            .ok_or_else(|| bad(format!("empty line {t:?}")))?
            .parse()
            .map_err(|e| bad(format!("bad item in {t:?}: {e}")))?;
        let weight: f64 = parts
            .next()
            .ok_or_else(|| bad(format!("missing weight in {t:?}")))?
            .parse()
            .map_err(|e| bad(format!("bad weight in {t:?}: {e}")))?;
        if weight < 0.0 || !weight.is_finite() {
            return Err(bad(format!("negative/non-finite weight in {t:?}")));
        }
        updates.push((item, weight));
    }
    Ok(WeightedStream { updates })
}

/// Convenience: round-trips a stream through a file path.
pub fn save_stream(path: impl AsRef<Path>, stream: &[Item]) -> std::io::Result<()> {
    write_stream(std::fs::File::create(path)?, stream)
}

/// Convenience: loads a stream from a file path.
pub fn load_stream(path: impl AsRef<Path>) -> std::io::Result<Vec<Item>> {
    read_stream(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_roundtrip() {
        let stream = vec![1u64, 5, 5, 2, 99];
        let mut buf = Vec::new();
        write_stream(&mut buf, &stream).unwrap();
        let back = read_stream(buf.as_slice()).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# a trace\n1\n\n2\n  # indented comment\n3\n";
        let back = read_stream(text.as_bytes()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn bad_item_is_io_error() {
        assert!(read_stream("not-a-number\n".as_bytes()).is_err());
    }

    #[test]
    fn weighted_roundtrip() {
        let ws = WeightedStream {
            updates: vec![(1, 2.5), (7, 0.125)],
        };
        let mut buf = Vec::new();
        write_weighted(&mut buf, &ws).unwrap();
        let back = read_weighted(buf.as_slice()).unwrap();
        assert_eq!(back.updates, ws.updates);
    }

    #[test]
    fn weighted_rejects_garbage() {
        assert!(read_weighted("1\n".as_bytes()).is_err(), "missing weight");
        assert!(read_weighted("1 x\n".as_bytes()).is_err(), "bad weight");
        assert!(
            read_weighted("1 -2\n".as_bytes()).is_err(),
            "negative weight"
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hh_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.txt");
        let stream = vec![3u64, 1, 4, 1, 5];
        save_stream(&path, &stream).unwrap();
        assert_eq!(load_stream(&path).unwrap(), stream);
        std::fs::remove_file(&path).ok();
    }
}
