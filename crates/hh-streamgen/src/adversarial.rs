//! Adversarial stream constructions.
//!
//! * [`LowerBoundInstance`] — the Appendix A construction behind Theorem 13:
//!   two streams sharing a long prefix that force *any* deterministic
//!   m-counter algorithm into error ≥ `F1^res(k) / (2m + 2k/X)`.
//! * [`lossy_counting_worst_case`] — the burst schedule that blows up
//!   LossyCounting's table (the Section 1.1 claim from \[24\] that
//!   adversarial orderings need `O(1/ε·log n)` counters).

use crate::zipf::{stream_from_counts, StreamOrder};
use crate::Item;

/// The Appendix A lower-bound instance.
///
/// Shared prefix: items `1..=m+k`, each occurring `x` times. Suffix A then
/// appends `k` items the algorithm *forgot* (it can store only `m` of the
/// `m+k`), suffix B appends `k` brand-new items (`m+k+1..=m+2k`). The two
/// continuations are indistinguishable to the algorithm, so its estimates
/// agree — but the true frequencies differ by `x`, forcing error ≥ `x/2` on
/// one of the two streams.
///
/// The adversary is adaptive: which items the algorithm forgot depends on
/// the algorithm, so the caller runs its algorithm on
/// [`Self::prefix`], asks which of `1..=m+k` it no longer stores (or stores
/// with the smallest counters) via [`Self::continuation_a`], and evaluates
/// both completed streams.
#[derive(Debug, Clone)]
pub struct LowerBoundInstance {
    /// Number of counters the algorithm under attack uses.
    pub m: usize,
    /// Tail parameter of the bound being violated.
    pub k: usize,
    /// Occurrences of each prefix item; error forced is `≥ x/2`.
    pub x: u64,
}

impl LowerBoundInstance {
    /// Creates the instance. Requires `k ≤ m` (as in Theorem 13) and
    /// `x ≥ 1`.
    pub fn new(m: usize, k: usize, x: u64) -> Self {
        assert!(k >= 1 && k <= m, "Theorem 13 requires 1 <= k <= m");
        assert!(x >= 1);
        LowerBoundInstance { m, k, x }
    }

    /// The shared prefix: items `1..=m+k`, each `x` times, round-robin
    /// interleaved (the interleaving keeps all items alive equally long —
    /// the nastiest realization of the construction).
    pub fn prefix(&self) -> Vec<Item> {
        let counts = vec![self.x; self.m + self.k];
        stream_from_counts(&counts, StreamOrder::RoundRobin)
    }

    /// Completes stream A: the prefix followed by one occurrence of each of
    /// `forgotten` (the k prefix items the algorithm under attack retains
    /// least information about — chosen by the caller after running the
    /// algorithm on the prefix).
    pub fn continuation_a(&self, forgotten: &[Item]) -> Vec<Item> {
        assert_eq!(forgotten.len(), self.k, "need exactly k forgotten items");
        assert!(
            forgotten
                .iter()
                .all(|&i| i >= 1 && i <= (self.m + self.k) as u64),
            "forgotten items must come from the prefix universe"
        );
        forgotten.to_vec()
    }

    /// Completes stream B: the prefix followed by `k` brand-new items
    /// `m+k+1..=m+2k`.
    pub fn continuation_b(&self) -> Vec<Item> {
        ((self.m + self.k + 1)..=(self.m + 2 * self.k))
            .map(|i| i as Item)
            .collect()
    }

    /// The error Theorem 13 forces on one of the two streams:
    /// `F1^res(k) / (2m + 2k/X)` where `F1^res(k) = X·m` for stream A.
    pub fn forced_error(&self) -> f64 {
        let res = (self.x * self.m as u64) as f64;
        res / (2.0 * self.m as f64 + 2.0 * self.k as f64 / self.x as f64)
    }
}

/// The ordering that drives LossyCounting's table to its
/// `Θ((1/ε)·log(εN))` worst case (the Section 1.1 claim from \[24\]).
///
/// With window width `w`, an entry inserted with count `c` survives roughly
/// `c` window boundaries after its burst. The construction runs `t`
/// windows; the window `j` boundaries *before the end* is filled with
/// `⌊w/(j+2)⌋` fresh items bursting `j+2` times each, so **every** group is
/// still resident at the final boundary. The high-water table size is
/// therefore `Σ_{j=1}^{t} w/(j+2) = Θ(w·ln t)`, while any random shuffle of
/// the same frequency multiset keeps the table at `O(w)` (spread-out
/// occurrences are pruned every window).
///
/// Returns `(stream, counts)` — the counts multiset lets callers build the
/// shuffled control with identical frequencies.
pub fn lossy_counting_worst_case(w: u64, t: u64) -> (Vec<Item>, Vec<u64>) {
    assert!(w >= 4 && t >= 1);
    let mut stream = Vec::new();
    let mut counts = Vec::new();
    let mut next_item: Item = 1;
    // Earliest windows host the longest-surviving groups (largest j).
    for j in (1..=t).rev() {
        let burst = j + 2;
        let group = w / burst;
        let mut used = 0u64;
        for _ in 0..group {
            counts.push(burst);
            stream.extend(std::iter::repeat_n(next_item, burst as usize));
            next_item += 1;
            used += burst;
        }
        // pad the window with fresh singletons so boundaries stay aligned
        while used < w {
            counts.push(1);
            stream.push(next_item);
            next_item += 1;
            used += 1;
        }
    }
    (stream, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactCounter;

    #[test]
    fn prefix_has_equal_counts() {
        let inst = LowerBoundInstance::new(10, 3, 7);
        let p = inst.prefix();
        assert_eq!(p.len(), 13 * 7);
        let c = ExactCounter::from_stream(&p);
        for i in 1..=13u64 {
            assert_eq!(c.count(&i), 7);
        }
    }

    #[test]
    fn continuations_have_right_shape() {
        let inst = LowerBoundInstance::new(5, 2, 3);
        let a = inst.continuation_a(&[1, 4]);
        assert_eq!(a, vec![1, 4]);
        let b = inst.continuation_b();
        assert_eq!(b, vec![8, 9]);
    }

    #[test]
    #[should_panic(expected = "exactly k")]
    fn continuation_a_validates_len() {
        let inst = LowerBoundInstance::new(5, 2, 3);
        inst.continuation_a(&[1]);
    }

    #[test]
    fn forced_error_matches_formula() {
        let inst = LowerBoundInstance::new(10, 2, 100);
        // res = 1000, denom = 20 + 4/100 = 20.04
        assert!((inst.forced_error() - 1000.0 / 20.04).abs() < 1e-9);
        // as x grows the bound approaches F1res/2m = x*m/2m = x/2
        let big = LowerBoundInstance::new(10, 2, 1_000_000);
        assert!((big.forced_error() / (big.x as f64 / 2.0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn worst_case_stream_matches_counts() {
        let (stream, counts) = lossy_counting_worst_case(20, 5);
        assert_eq!(stream.len() as u64, counts.iter().sum::<u64>());
        assert_eq!(stream.len() as u64, 20 * 5, "each window exactly filled");
        let c = ExactCounter::from_stream(&stream);
        let mut observed: Vec<u64> = (1..=c.distinct() as u64).map(|i| c.count(&i)).collect();
        observed.sort_unstable();
        let mut expect = counts.clone();
        expect.sort_unstable();
        assert_eq!(observed, expect);
    }

    #[test]
    fn worst_case_group_sizes_shrink_towards_the_end() {
        let (_, counts) = lossy_counting_worst_case(100, 10);
        // the largest burst is t+2, present w/(t+2) times
        assert_eq!(counts.iter().filter(|&&c| c == 12).count(), 100 / 12);
        assert!(counts.iter().filter(|&&c| c == 3).count() >= 100 / 3);
    }
}
