//! Frequency-vector statistics: `F1`, `F_p`, and residual moments
//! `F_p^res(k)`.
//!
//! The paper's bounds are all expressed in terms of the residual moments of
//! the frequency vector: `F_p^res(k) = Σ_{i>k} f_i^p` where items are indexed
//! in order of decreasing frequency (Section 2 of the paper). [`Freqs`] owns
//! a descending-sorted copy of the frequency vector and evaluates these
//! quantities exactly (in `u64` for p = 1, in `f64` for general p).

/// A frequency vector sorted in non-increasing order.
///
/// Construct it from any collection of per-item counts; zero counts are
/// dropped (they contribute nothing to any `F_p`).
///
/// ```
/// use hh_streamgen::Freqs;
/// let f = Freqs::from_counts([5u64, 1, 3, 0, 2]);
/// assert_eq!(f.f1(), 11);
/// assert_eq!(f.res1(1), 6); // all but the largest (5)
/// assert_eq!(f.res1(0), 11); // F1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Freqs {
    sorted_desc: Vec<u64>,
    f1: u64,
}

impl Freqs {
    /// Builds from an iterator of raw counts (unsorted, zeros allowed).
    pub fn from_counts<It: IntoIterator<Item = u64>>(counts: It) -> Self {
        let mut sorted_desc: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
        sorted_desc.sort_unstable_by(|a, b| b.cmp(a));
        let f1 = sorted_desc.iter().sum();
        Freqs { sorted_desc, f1 }
    }

    /// Number of distinct items with non-zero frequency.
    pub fn distinct(&self) -> usize {
        self.sorted_desc.len()
    }

    /// `F1`: the total stream length (sum of all frequencies).
    pub fn f1(&self) -> u64 {
        self.f1
    }

    /// The `i`-th largest frequency (0-indexed), or 0 past the end.
    pub fn nth(&self, i: usize) -> u64 {
        self.sorted_desc.get(i).copied().unwrap_or(0)
    }

    /// The frequencies in non-increasing order.
    pub fn as_slice(&self) -> &[u64] {
        &self.sorted_desc
    }

    /// `F1^res(k)`: the sum of all but the `k` largest frequencies.
    ///
    /// This is the quantity every tail bound in the paper is stated in terms
    /// of. `res1(0) == f1()`.
    pub fn res1(&self, k: usize) -> u64 {
        if k >= self.sorted_desc.len() {
            0
        } else {
            self.sorted_desc[k..].iter().sum()
        }
    }

    /// `F_p^res(k) = Σ_{i>k} f_i^p` as an `f64`, for any real `p ≥ 1`.
    pub fn res_p(&self, k: usize, p: f64) -> f64 {
        if k >= self.sorted_desc.len() {
            return 0.0;
        }
        self.sorted_desc[k..]
            .iter()
            .map(|&f| (f as f64).powf(p))
            .sum()
    }

    /// `F_p = F_p^res(0)`.
    pub fn fp(&self, p: f64) -> f64 {
        self.res_p(0, p)
    }

    /// Sum of the `k` largest frequencies (`F1 − F1^res(k)`).
    pub fn head1(&self, k: usize) -> u64 {
        let k = k.min(self.sorted_desc.len());
        self.sorted_desc[..k].iter().sum()
    }

    /// The smallest `m` such that the top-`m` items cover at least `fraction`
    /// of `F1`. Useful for characterizing skew in experiment output.
    pub fn coverage(&self, fraction: f64) -> usize {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let target = (self.f1 as f64) * fraction;
        let mut acc = 0.0;
        for (i, &f) in self.sorted_desc.iter().enumerate() {
            acc += f as f64;
            if acc >= target {
                return i + 1;
            }
        }
        self.sorted_desc.len()
    }
}

/// `‖x − y‖_p` for two sparse non-negative vectors given as sorted-by-key
/// pairs is provided by `hh-analysis`; this module only handles the
/// *marginal* statistics of a single vector.
///
/// Computes the tail bound `A · F1^res(k) / (m − B·k)` from Definition 2 of
/// the paper. Returns `None` when the denominator is not positive (the
/// guarantee is vacuous there — the theorems require `k < m/B`).
pub fn tail_bound(a: f64, b: f64, m: usize, k: usize, res1_k: u64) -> Option<f64> {
    let denom = m as f64 - b * k as f64;
    if denom <= 0.0 {
        None
    } else {
        Some(a * res1_k as f64 / denom)
    }
}

/// The Theorem 5 k-sparse recovery bound:
/// `ε · F1^res(k) / k^{1−1/p} + (F_p^res(k))^{1/p}`.
pub fn sparse_recovery_bound(eps: f64, k: usize, p: f64, res1_k: u64, res_p_k: f64) -> f64 {
    assert!(p >= 1.0, "p must be >= 1");
    assert!(k > 0, "k must be positive");
    eps * res1_k as f64 / (k as f64).powf(1.0 - 1.0 / p) + res_p_k.powf(1.0 / p)
}

/// The Theorem 7 m-sparse recovery bound for underestimating algorithms:
/// `(1+ε) · (ε/k)^{1−1/p} · F1^res(k)`.
pub fn msparse_recovery_bound(eps: f64, k: usize, p: f64, res1_k: u64) -> f64 {
    assert!(p >= 1.0, "p must be >= 1");
    assert!(k > 0, "k must be positive");
    (1.0 + eps) * (eps / k as f64).powf(1.0 - 1.0 / p) * res1_k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freqs_sorted_and_f1() {
        let f = Freqs::from_counts([3u64, 9, 1, 7]);
        assert_eq!(f.as_slice(), &[9, 7, 3, 1]);
        assert_eq!(f.f1(), 20);
        assert_eq!(f.distinct(), 4);
    }

    #[test]
    fn zeros_are_dropped() {
        let f = Freqs::from_counts([0u64, 0, 5]);
        assert_eq!(f.distinct(), 1);
        assert_eq!(f.f1(), 5);
    }

    #[test]
    fn residuals() {
        let f = Freqs::from_counts([10u64, 5, 3, 2]);
        assert_eq!(f.res1(0), 20);
        assert_eq!(f.res1(1), 10);
        assert_eq!(f.res1(2), 5);
        assert_eq!(f.res1(3), 2);
        assert_eq!(f.res1(4), 0);
        assert_eq!(f.res1(100), 0);
    }

    #[test]
    fn residual_p_moments() {
        let f = Freqs::from_counts([4u64, 2, 1]);
        // F2^res(1) = 2^2 + 1^2 = 5
        assert!((f.res_p(1, 2.0) - 5.0).abs() < 1e-12);
        // F1 via p=1 path agrees with exact
        assert!((f.res_p(0, 1.0) - 7.0).abs() < 1e-12);
        assert!((f.fp(2.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn head_and_nth() {
        let f = Freqs::from_counts([4u64, 2, 1]);
        assert_eq!(f.head1(2), 6);
        assert_eq!(f.head1(99), 7);
        assert_eq!(f.nth(0), 4);
        assert_eq!(f.nth(2), 1);
        assert_eq!(f.nth(3), 0);
    }

    #[test]
    fn head_plus_residual_is_f1() {
        let f = Freqs::from_counts([9u64, 9, 8, 1, 1, 1]);
        for k in 0..=7 {
            assert_eq!(f.head1(k) + f.res1(k), f.f1());
        }
    }

    #[test]
    fn coverage_basic() {
        let f = Freqs::from_counts([50u64, 30, 15, 5]);
        assert_eq!(f.coverage(0.5), 1);
        assert_eq!(f.coverage(0.8), 2);
        assert_eq!(f.coverage(1.0), 4);
    }

    #[test]
    fn tail_bound_matches_hand_computation() {
        // A=1, B=1, m=10, k=2, F1res(2)=40 -> 40/8 = 5
        assert_eq!(tail_bound(1.0, 1.0, 10, 2, 40), Some(5.0));
        // vacuous when m <= B*k
        assert_eq!(tail_bound(1.0, 1.0, 2, 2, 40), None);
        assert_eq!(tail_bound(1.0, 2.0, 4, 2, 40), None);
    }

    #[test]
    fn recovery_bounds_degenerate_p1() {
        // p = 1: k^{1-1/p} = 1 so bound is eps*res + res.
        let b = sparse_recovery_bound(0.1, 5, 1.0, 100, 100.0);
        assert!((b - (0.1 * 100.0 + 100.0)).abs() < 1e-9);
        // m-sparse at p=1: (1+eps)*res
        let mb = msparse_recovery_bound(0.1, 5, 1.0, 100);
        assert!((mb - 110.0).abs() < 1e-9);
    }

    #[test]
    fn empty_freqs() {
        let f = Freqs::from_counts(std::iter::empty::<u64>());
        assert_eq!(f.f1(), 0);
        assert_eq!(f.res1(0), 0);
        assert_eq!(f.distinct(), 0);
        assert_eq!(f.coverage(0.5), 0);
    }
}
