//! General stream builders: uniform, two-level, custom frequency vectors and
//! real-weighted streams (for the Section 6.1 algorithms).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};

use crate::zipf::{stream_from_counts, StreamOrder};
use crate::Item;

/// Re-export of [`StreamOrder`] under the name used by the builder API.
pub type Ordering = StreamOrder;

/// Fluent builder for unweighted streams over items `1..=n`.
///
/// ```
/// use hh_streamgen::{StreamBuilder, Ordering};
/// let s = StreamBuilder::new()
///     .heavy_items(3, 100)   // 3 items with 100 occurrences each
///     .light_items(50, 2)    // 50 items with 2 occurrences each
///     .order(Ordering::Shuffled(1))
///     .build();
/// assert_eq!(s.len(), 400);
/// ```
#[derive(Debug, Clone)]
pub struct StreamBuilder {
    counts: Vec<u64>,
    order: StreamOrder,
}

impl Default for StreamBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamBuilder {
    /// Creates an empty builder (default ordering: `Shuffled(0)`).
    pub fn new() -> Self {
        StreamBuilder {
            counts: Vec::new(),
            order: StreamOrder::Shuffled(0),
        }
    }

    /// Appends `n` items each occurring `count` times. Items are assigned
    /// consecutive ids after the ones already added.
    pub fn heavy_items(mut self, n: usize, count: u64) -> Self {
        self.counts.extend(std::iter::repeat_n(count, n));
        self
    }

    /// Alias of [`Self::heavy_items`] for readability when adding the tail.
    pub fn light_items(self, n: usize, count: u64) -> Self {
        self.heavy_items(n, count)
    }

    /// Appends an explicit frequency vector.
    pub fn counts(mut self, counts: &[u64]) -> Self {
        self.counts.extend_from_slice(counts);
        self
    }

    /// Sets the stream ordering.
    pub fn order(mut self, order: StreamOrder) -> Self {
        self.order = order;
        self
    }

    /// The frequency vector accumulated so far (item `i+1` has count
    /// `counts[i]`).
    pub fn frequency_vector(&self) -> &[u64] {
        &self.counts
    }

    /// Materializes the stream.
    pub fn build(&self) -> Vec<Item> {
        stream_from_counts(&self.counts, self.order)
    }
}

/// Uniform stream: `len` draws uniformly from `1..=n` (seeded).
pub fn uniform_stream(n: usize, len: usize, seed: u64) -> Vec<Item> {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(1..=n as u64)).collect()
}

/// A weighted stream of `(item, weight)` tuples — the Section 6.1 model
/// where each arrival carries a positive real weight (e.g. packet bytes).
#[derive(Debug, Clone)]
pub struct WeightedStream {
    /// The `(item, weight)` arrivals in stream order.
    pub updates: Vec<(Item, f64)>,
}

impl WeightedStream {
    /// Total weight `F1` of the stream.
    pub fn total_weight(&self) -> f64 {
        self.updates.iter().map(|(_, w)| w).sum()
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the stream has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Synthesizes a packet-trace-like workload: item popularity is Zipfian
    /// (via an exact frequency vector shuffled into random order) and each
    /// arrival's weight is drawn i.i.d. LogNormal(`mu`, `sigma`) — a standard
    /// stand-in for packet/transaction sizes.
    ///
    /// This substitutes for the real network traces the paper's motivation
    /// refers to: the tail-guarantee theorems are worst-case, so any workload
    /// exercising skewed ids with heavy-tailed weights covers the same code
    /// path.
    pub fn packet_trace(n: usize, len: usize, alpha: f64, mu: f64, sigma: f64, seed: u64) -> Self {
        let counts = crate::zipf::exact_zipf_counts(n, len as u64, alpha);
        let mut items = stream_from_counts(&counts, StreamOrder::BlocksDescending);
        let mut rng = StdRng::seed_from_u64(seed);
        items.shuffle(&mut rng);
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "packet_trace requires finite mu and sigma >= 0"
        );
        // lint:allow(panic-freedom) unreachable: the assert above covers LogNormal::new's exact failure domain
        let sizes = LogNormal::new(mu, sigma).expect("valid lognormal params");
        let updates = items
            .into_iter()
            .map(|i| (i, sizes.sample(&mut rng)))
            .collect();
        WeightedStream { updates }
    }

    /// A weighted stream with explicit per-item total weights, split into
    /// `chunks` roughly-equal arrivals per item and shuffled (seeded).
    pub fn from_totals(totals: &[(Item, f64)], chunks: usize, seed: u64) -> Self {
        assert!(chunks > 0);
        let mut updates = Vec::with_capacity(totals.len() * chunks);
        for &(item, total) in totals {
            assert!(
                total >= 0.0 && total.is_finite(),
                "weights must be non-negative"
            );
            let per = total / chunks as f64;
            for _ in 0..chunks {
                updates.push((item, per));
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        updates.shuffle(&mut rng);
        WeightedStream { updates }
    }
}

/// Concatenates streams (summary-merge experiments feed each piece to its
/// own summarizer, then merge; the concatenation is the ground truth).
pub fn concat(streams: &[Vec<Item>]) -> Vec<Item> {
    let mut out = Vec::with_capacity(streams.iter().map(Vec::len).sum());
    for s in streams {
        out.extend_from_slice(s);
    }
    out
}

/// Splits a stream into `parts` contiguous chunks of near-equal length
/// (distributed summarization experiments).
pub fn split(stream: &[Item], parts: usize) -> Vec<Vec<Item>> {
    assert!(parts > 0);
    let chunk = stream.len().div_ceil(parts);
    if stream.is_empty() {
        return vec![Vec::new(); parts];
    }
    let mut out: Vec<Vec<Item>> = stream.chunks(chunk).map(|c| c.to_vec()).collect();
    while out.len() < parts {
        out.push(Vec::new());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ExactCounter, ExactWeightedCounter};

    #[test]
    fn builder_assigns_sequential_ids() {
        let s = StreamBuilder::new()
            .heavy_items(2, 3)
            .light_items(1, 1)
            .order(StreamOrder::BlocksDescending)
            .build();
        let c = ExactCounter::from_stream(&s);
        assert_eq!(c.count(&1), 3);
        assert_eq!(c.count(&2), 3);
        assert_eq!(c.count(&3), 1);
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn uniform_stream_in_range_and_seeded() {
        let a = uniform_stream(10, 1000, 5);
        let b = uniform_stream(10, 1000, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (1..=10).contains(&x)));
        let c = ExactCounter::from_stream(&a);
        assert!(
            c.distinct() == 10,
            "with 1000 draws of 10 items all appear whp"
        );
    }

    #[test]
    fn packet_trace_weights_positive() {
        let w = WeightedStream::packet_trace(100, 2000, 1.1, 6.0, 1.0, 3);
        assert_eq!(w.len(), 2000);
        assert!(w
            .updates
            .iter()
            .all(|&(i, wt)| wt > 0.0 && (1..=100).contains(&i)));
        assert!(w.total_weight() > 0.0);
    }

    #[test]
    fn from_totals_preserves_per_item_weight() {
        let w = WeightedStream::from_totals(&[(1, 10.0), (2, 4.0)], 4, 0);
        assert_eq!(w.len(), 8);
        let c = ExactWeightedCounter::from_stream(&w.updates);
        assert!((c.weight(&1) - 10.0).abs() < 1e-9);
        assert!((c.weight(&2) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let s: Vec<Item> = (1..=10).collect();
        let parts = split(&s, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(concat(&parts), s);
        // splitting into more parts than elements pads with empties
        let tiny = split(&[1, 2], 4);
        assert_eq!(tiny.len(), 4);
        assert_eq!(concat(&tiny), vec![1, 2]);
    }
}
