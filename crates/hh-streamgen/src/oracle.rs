//! Exact counting oracles used as ground truth in tests and experiments.

use std::collections::HashMap;
use std::hash::Hash;

use crate::stats::Freqs;

/// Exact frequency counter over an unweighted stream.
///
/// This is the ground-truth oracle: it stores every distinct item (O(n)
/// space, which the streaming algorithms are precisely trying to avoid) and
/// answers exact frequencies, exact top-k, and the residual statistics
/// against which every guarantee is checked.
#[derive(Debug, Clone, Default)]
pub struct ExactCounter<I: Eq + Hash> {
    counts: HashMap<I, u64>,
    total: u64,
}

impl<I: Eq + Hash + Clone + Ord> ExactCounter<I> {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        ExactCounter {
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Builds an oracle directly from a stream.
    pub fn from_stream<'a, It: IntoIterator<Item = &'a I>>(stream: It) -> Self
    where
        I: 'a,
    {
        let mut c = Self::new();
        for item in stream {
            c.update(item.clone());
        }
        c
    }

    /// Processes one occurrence of `item`.
    pub fn update(&mut self, item: I) {
        self.update_by(item, 1);
    }

    /// Processes `count` occurrences of `item`.
    pub fn update_by(&mut self, item: I, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(item).or_insert(0) += count;
        self.total += count;
    }

    /// The exact frequency of `item` (0 if never seen).
    pub fn count(&self, item: &I) -> u64 {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// Total stream length `F1`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct items.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The frequency vector (for `F_p^res(k)` computations).
    pub fn freqs(&self) -> Freqs {
        Freqs::from_counts(self.counts.values().copied())
    }

    /// All `(item, count)` pairs sorted by decreasing count; ties broken by
    /// ascending item so the result is deterministic.
    pub fn sorted_counts(&self) -> Vec<(I, u64)> {
        let mut v: Vec<(I, u64)> = self.counts.iter().map(|(i, &c)| (i.clone(), c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// The exact top-`k` items, most frequent first (deterministic
    /// tie-break by ascending item).
    pub fn top_k(&self, k: usize) -> Vec<(I, u64)> {
        let mut v = self.sorted_counts();
        v.truncate(k);
        v
    }

    /// Iterates over `(item, count)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&I, u64)> {
        self.counts.iter().map(|(i, &c)| (i, c))
    }
}

/// Exact counter over a weighted stream (Section 6.1 of the paper: each
/// update is `(item, weight)` with `weight ∈ ℝ⁺`).
#[derive(Debug, Clone, Default)]
pub struct ExactWeightedCounter<I: Eq + Hash> {
    weights: HashMap<I, f64>,
    total: f64,
}

impl<I: Eq + Hash + Clone + Ord> ExactWeightedCounter<I> {
    /// Creates an empty weighted oracle.
    pub fn new() -> Self {
        ExactWeightedCounter {
            weights: HashMap::new(),
            total: 0.0,
        }
    }

    /// Builds an oracle from a weighted stream of `(item, weight)` pairs.
    pub fn from_stream<'a, It: IntoIterator<Item = &'a (I, f64)>>(stream: It) -> Self
    where
        I: 'a,
    {
        let mut c = Self::new();
        for (item, w) in stream {
            c.update(item.clone(), *w);
        }
        c
    }

    /// Adds `weight` occurrences-worth of `item`. Panics on negative or
    /// non-finite weights (the paper's model is `b_i ∈ ℝ⁺`).
    pub fn update(&mut self, item: I, weight: f64) {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "weights must be non-negative and finite"
        );
        *self.weights.entry(item).or_insert(0.0) += weight;
        self.total += weight;
    }

    /// The exact total weight of `item` (0 if never seen).
    pub fn weight(&self, item: &I) -> f64 {
        self.weights.get(item).copied().unwrap_or(0.0)
    }

    /// Total stream weight `F1`.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of distinct items.
    pub fn distinct(&self) -> usize {
        self.weights.len()
    }

    /// All `(item, weight)` pairs sorted by decreasing weight, ties broken by
    /// ascending item.
    pub fn sorted_weights(&self) -> Vec<(I, f64)> {
        let mut v: Vec<(I, f64)> = self.weights.iter().map(|(i, &w)| (i.clone(), w)).collect();
        v.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// `F1^res(k)` of the weight vector.
    pub fn res1(&self, k: usize) -> f64 {
        let sorted = self.sorted_weights();
        sorted.iter().skip(k).map(|(_, w)| w).sum()
    }

    /// The exact top-`k` items by weight.
    pub fn top_k(&self, k: usize) -> Vec<(I, f64)> {
        let mut v = self.sorted_weights();
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts() {
        let stream = [1u64, 2, 1, 3, 1, 2];
        let c = ExactCounter::from_stream(&stream);
        assert_eq!(c.count(&1), 3);
        assert_eq!(c.count(&2), 2);
        assert_eq!(c.count(&3), 1);
        assert_eq!(c.count(&99), 0);
        assert_eq!(c.total(), 6);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn top_k_deterministic_ties() {
        let stream = [5u64, 4, 3, 5, 4, 3];
        let c = ExactCounter::from_stream(&stream);
        // all have count 2; ties broken by ascending item
        assert_eq!(c.top_k(2), vec![(3, 2), (4, 2)]);
    }

    #[test]
    fn freqs_roundtrip() {
        let stream = [7u64, 7, 7, 8, 8, 9];
        let c = ExactCounter::from_stream(&stream);
        let f = c.freqs();
        assert_eq!(f.as_slice(), &[3, 2, 1]);
        assert_eq!(f.res1(1), 3);
    }

    #[test]
    fn update_by_zero_is_noop() {
        let mut c: ExactCounter<u64> = ExactCounter::new();
        c.update_by(1, 0);
        assert_eq!(c.distinct(), 0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn weighted_counts() {
        let stream = [(1u64, 2.5), (2, 1.0), (1, 0.5)];
        let c = ExactWeightedCounter::from_stream(&stream);
        assert!((c.weight(&1) - 3.0).abs() < 1e-12);
        assert!((c.weight(&2) - 1.0).abs() < 1e-12);
        assert!((c.total() - 4.0).abs() < 1e-12);
        assert_eq!(c.top_k(1), vec![(1, 3.0)]);
        assert!((c.res1(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weighted_rejects_negative() {
        let mut c: ExactWeightedCounter<u64> = ExactWeightedCounter::new();
        c.update(1, -1.0);
    }
}
