//! Synthetic stream workloads with exact ground truth.
//!
//! This crate is the workload substrate for the reproduction of
//! *Space-optimal Heavy Hitters with Strong Error Bounds* (Berinde, Cormode,
//! Indyk, Strauss — PODS 2009). The paper is a theory paper and evaluates
//! nothing empirically; its theorems are worst-case over all streams, and its
//! Section 5 analyzes Zipfian frequency vectors. Accordingly this crate
//! provides:
//!
//! * [`zipf`] — exact Zipfian frequency vectors (the distribution assumed by
//!   Theorems 8 and 9) and sampled Zipf streams;
//! * [`generators`] — uniform, two-level, weighted and custom stream builders
//!   plus stream orderings (the theorems hold for *any* ordering, so the
//!   experiments sweep orderings);
//! * [`adversarial`] — the Appendix A lower-bound construction and orderings
//!   that are known to be hard for `LossyCounting`;
//! * [`oracle`] — exact counting for ground truth;
//! * [`stats`] — `F1`, `F_p`, and residual `F_p^res(k)` computations used by
//!   every bound in the paper.
//!
//! Everything randomized takes an explicit `u64` seed so experiments are
//! reproducible bit-for-bit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod drift;
pub mod generators;
pub mod oracle;
pub mod stats;
pub mod trace_io;
pub mod zipf;

pub use generators::{Ordering, StreamBuilder, WeightedStream};
pub use oracle::{ExactCounter, ExactWeightedCounter};
pub use stats::Freqs;
pub use zipf::{exact_zipf_counts, stream_from_counts, zeta, ZipfSampler};

/// The item type produced by all generators in this crate.
///
/// Algorithms in `hh-counters` / `hh-sketches` are generic over their item
/// type; the experiment harness instantiates them with `Item`.
pub type Item = u64;
